package anxiety

import (
	"fmt"
	"math"
)

// FitCanonical finds the Canonical parameters best matching an arbitrary
// anxiety model in the least-squares sense, by grid search with local
// refinement over the three shape parameters. Converting an empirical
// survey curve into the closed form gives schedulers a branch-free
// phi(.) and makes curves comparable across survey waves.
func FitCanonical(m Model) (*Canonical, error) {
	if m == nil {
		return nil, fmt.Errorf("anxiety: nil model")
	}
	// Sample the target once.
	const samples = 99
	xs := make([]float64, samples)
	ys := make([]float64, samples)
	for i := range xs {
		xs[i] = float64(i+1) / 100
		ys[i] = m.Anxiety(xs[i])
	}
	loss := func(c *Canonical) float64 {
		sum := 0.0
		for i := range xs {
			d := c.Anxiety(xs[i]) - ys[i]
			sum += d * d
		}
		return sum
	}

	best := NewCanonical()
	bestLoss := loss(best)
	// Coarse grid, then two refinement passes shrinking the step.
	warmLo, warmHi := 0.4, 0.95
	convLo, convHi := 1.1, 4.0
	concLo, concHi := 1.1, 3.0
	for pass := 0; pass < 3; pass++ {
		steps := 8
		for i := 0; i <= steps; i++ {
			w := warmLo + (warmHi-warmLo)*float64(i)/float64(steps)
			for j := 0; j <= steps; j++ {
				cv := convLo + (convHi-convLo)*float64(j)/float64(steps)
				for k := 0; k <= steps; k++ {
					cc := concLo + (concHi-concLo)*float64(k)/float64(steps)
					cand := &Canonical{AnxietyAtWarning: w, ConvexPower: cv, ConcavePower: cc}
					if l := loss(cand); l < bestLoss {
						bestLoss = l
						best = cand
					}
				}
			}
		}
		// Shrink the search box around the incumbent.
		warmLo, warmHi = shrink(best.AnxietyAtWarning, warmLo, warmHi)
		convLo, convHi = shrink(best.ConvexPower, convLo, convHi)
		concLo, concHi = shrink(best.ConcavePower, concLo, concHi)
	}
	return best, nil
}

func shrink(center, lo, hi float64) (float64, float64) {
	span := (hi - lo) / 4
	nl, nh := center-span, center+span
	if nl < lo {
		nl = lo
	}
	if nh > hi {
		nh = hi
	}
	return nl, nh
}

// RMSE reports the root-mean-square difference between two anxiety
// models over the battery range — the fit-quality metric for
// FitCanonical.
func RMSE(a, b Model) float64 {
	sum := 0.0
	const samples = 99
	for i := 1; i <= samples; i++ {
		e := float64(i) / 100
		d := a.Anxiety(e) - b.Anxiety(e)
		sum += d * d
	}
	return math.Sqrt(sum / samples)
}

// Package stats provides the statistical substrate shared by the LPVS
// reproduction: deterministic random-number streams, histograms,
// summaries, linear regression, and normal-distribution helpers.
//
// Everything in this package is deterministic given a seed, so that
// emulation runs — and the paper-figure regenerators built on top of
// them — are exactly reproducible.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. It wraps math/rand with the
// distribution samplers the LPVS emulator needs (truncated Gaussian,
// log-normal, categorical) so that callers never reach for package-level
// randomness.
type RNG struct {
	r    *rand.Rand
	src  *countingSource
	seed int64
}

// countingSource wraps the stdlib generator and counts how many values
// it has handed out, so a stream's exact position can be captured as
// (seed, draws) and rebuilt later (durable-state checkpoints,
// DESIGN.md §14). Both methods advance the underlying generator by
// exactly one step — the stdlib's Int63 is Uint64 masked to 63 bits —
// so the count is source-steps, independent of which method ran.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// NewRNG returns a deterministic stream seeded with seed.
func NewRNG(seed int64) *RNG {
	// rand.NewSource's generator has implemented Source64 since Go 1.8;
	// the assertion keeps draw sequences identical to rand.New(source).
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &RNG{r: rand.New(src), src: src, seed: seed}
}

// State captures the stream's exact position: the stream is the pure
// function of its seed advanced by draws source steps. The pair
// round-trips through RestoreRNG.
func (g *RNG) State() (seed int64, draws uint64) {
	return g.seed, g.src.n
}

// RestoreRNG rebuilds the stream NewRNG(seed) would hold after exactly
// draws source values were consumed: every RNG method consumes whole
// source steps (rand.Rand buffers state only for Read, which RNG does
// not expose), so the restored stream continues bit-for-bit from where
// State was taken.
func RestoreRNG(seed int64, draws uint64) *RNG {
	g := NewRNG(seed)
	for i := uint64(0); i < draws; i++ {
		g.src.src.Uint64()
	}
	g.src.n = draws
	return g
}

// Fork derives an independent child stream from the current state. It is
// used to give every device / channel / slot its own stream so that
// changing one consumer does not perturb the draws seen by another.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// TruncNormal samples a Gaussian with the given mean and standard
// deviation, truncated (by rejection with a clamping fallback) to
// [lo, hi]. The fallback keeps the sampler total even for priors whose
// mass barely intersects the interval, such as the paper's sigma=12
// initialisation of the power-reduction ratio.
func (g *RNG) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	for i := 0; i < 64; i++ {
		v := g.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	// The interval carries almost no prior mass; fall back to a uniform
	// draw so the caller still gets a legal value.
	return g.Uniform(lo, hi)
}

// LogNormal returns exp(N(mu, sigma^2)).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exponential returns an exponential sample with the given mean.
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Categorical draws an index from the (unnormalised, non-negative)
// weights. It panics if weights is empty or sums to zero.
func (g *RNG) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("stats: Categorical with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: Categorical with negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("stats: Categorical with zero total weight")
	}
	u := g.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomises the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

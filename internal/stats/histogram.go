package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values outside
// the range are clamped into the first / last bin so that no observation
// is silently dropped — the survey-curve extraction depends on every
// answer being counted.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins spanning
// [lo, hi). It panics on a non-positive bin count or an empty range.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram requires bins > 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram requires hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := h.binOf(x)
	h.Counts[idx]++
	h.total++
}

func (h *Histogram) binOf(x float64) int {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	idx := int((x - h.Lo) / w)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	return idx
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Fractions returns the normalised bin frequencies. All zeros when the
// histogram is empty.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Render draws a textual bar chart of the histogram, width characters
// wide, one row per bin — the form used by the figure regenerators to
// print Fig. 5-style histograms.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%8.1f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics over xs. An empty sample
// yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It does not mutate xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Pearson returns the linear correlation coefficient of two equal-length
// samples, in [-1, 1]. It panics on mismatched lengths and returns 0
// when either sample is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, syy, sxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinearFit is the least-squares line y = Slope*x + Intercept together
// with its coefficient of determination, as reported for the scheduler
// runtime trend in Fig. 10 of the paper.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine computes the ordinary-least-squares fit of ys against xs.
// It panics if the slices differ in length or have fewer than two
// points, or if all xs are identical.
func FitLine(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: FitLine length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: FitLine needs at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy := 0.0, 0.0
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		panic("stats: FitLine with constant x")
	}
	fit := LinearFit{Slope: sxy / sxx}
	fit.Intercept = my - fit.Slope*mx
	ssTot, ssRes := 0.0, 0.0
	for i := range xs {
		pred := fit.Slope*xs[i] + fit.Intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	if ssTot == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = 1 - ssRes/ssTot
	}
	return fit
}

package stats

import (
	"math"
	"testing"
)

// drainMixed consumes a representative mix of sampler calls — every
// method advances the source by whole steps, which is what makes the
// (seed, draws) state capture exact.
func drainMixed(g *RNG) {
	g.Float64()
	g.Intn(10)
	g.Int63()
	g.Uniform(2, 5)
	g.Normal(0, 1)
	g.TruncNormal(0.3, 12, 0.1, 0.5)
	g.LogNormal(0, 0.5)
	g.Exponential(3)
	g.Bool(0.5)
	g.Categorical([]float64{1, 2, 3})
	g.Perm(6)
	g.Shuffle(5, func(i, j int) {})
}

// TestRNGStateRestore: a stream rebuilt from State must continue
// bit-for-bit, across every sampler the emulator uses.
func TestRNGStateRestore(t *testing.T) {
	g := NewRNG(42)
	for i := 0; i < 13; i++ {
		drainMixed(g)
	}
	seed, draws := g.State()
	if seed != 42 {
		t.Fatalf("seed %d, want 42", seed)
	}
	if draws == 0 {
		t.Fatal("no source draws counted")
	}
	h := RestoreRNG(seed, draws)
	if s2, d2 := h.State(); s2 != seed || d2 != draws {
		t.Fatalf("restored state (%d, %d) != (%d, %d)", s2, d2, seed, draws)
	}
	for i := 0; i < 100; i++ {
		if a, b := g.Float64(), h.Float64(); a != b {
			t.Fatalf("draw %d: %v != %v", i, a, b)
		}
		if a, b := g.Normal(0, 1), h.Normal(0, 1); a != b {
			t.Fatalf("normal draw %d: %v != %v", i, a, b)
		}
		if a, b := g.Intn(1000), h.Intn(1000); a != b {
			t.Fatalf("intn draw %d: %v != %v", i, a, b)
		}
	}
}

// TestRNGRestoreZeroDraws: restoring with zero draws is a fresh stream.
func TestRNGRestoreZeroDraws(t *testing.T) {
	a, b := NewRNG(7), RestoreRNG(7, 0)
	for i := 0; i < 50; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: %v != %v", i, x, y)
		}
	}
}

// TestRNGSequenceUnchanged pins the stream against plain math/rand:
// the counting wrapper must not perturb the draw sequence that every
// recorded BENCH/figure artifact depends on.
func TestRNGSequenceUnchanged(t *testing.T) {
	g := NewRNG(1)
	// First three Float64 draws of math/rand.New(rand.NewSource(1)).
	want := []float64{0.6046602879796196, 0.9405090880450124, 0.6645600532184904}
	for i, w := range want {
		if got := g.Float64(); math.Abs(got-w) > 0 {
			t.Fatalf("draw %d: %v, want %v (sequence changed)", i, got, w)
		}
	}
}

// TestRNGForkAdvancesState: forking consumes parent draws that the
// state capture must account for.
func TestRNGForkAdvancesState(t *testing.T) {
	g := NewRNG(3)
	g.Fork()
	seed, draws := g.State()
	h := RestoreRNG(seed, draws)
	if a, b := g.Int63(), h.Int63(); a != b {
		t.Fatalf("post-fork draw diverged: %v != %v", a, b)
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Fork()
	// The child must be deterministic given the parent seed.
	parent2 := NewRNG(7)
	child2 := parent2.Fork()
	for i := 0; i < 10; i++ {
		if child.Float64() != child2.Float64() {
			t.Fatal("forked streams are not reproducible")
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform(-2,5) = %v out of range", v)
		}
	}
}

func TestTruncNormalWithinBounds(t *testing.T) {
	g := NewRNG(2)
	for i := 0; i < 2000; i++ {
		v := g.TruncNormal(0.31, 12, 0.13, 0.49)
		if v < 0.13 || v > 0.49 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestTruncNormalSwappedBounds(t *testing.T) {
	g := NewRNG(3)
	v := g.TruncNormal(0, 1, 1, -1)
	if v < -1 || v > 1 {
		t.Fatalf("TruncNormal with swapped bounds out of range: %v", v)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	g := NewRNG(4)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[g.Categorical([]float64{1, 2, 7})]++
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Fatalf("categorical frequencies not ordered by weight: %v", counts)
	}
	frac2 := float64(counts[2]) / 30000
	if math.Abs(frac2-0.7) > 0.03 {
		t.Fatalf("weight-7 frequency = %v, want about 0.7", frac2)
	}
}

func TestCategoricalPanics(t *testing.T) {
	g := NewRNG(5)
	for _, weights := range [][]float64{nil, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", weights)
				}
			}()
			g.Categorical(weights)
		}()
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
	}
	for _, c := range cases {
		got := StdNormalCDF(c.x)
		if math.Abs(got-c.want) > 1e-3 {
			t.Errorf("StdNormalCDF(%v) = %v, want ~%v", c.x, got, c.want)
		}
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	// Simple trapezoidal integration over a wide interval.
	sum := 0.0
	const step = 0.001
	for x := -8.0; x < 8.0; x += step {
		sum += StdNormalPDF(x) * step
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("pdf integrates to %v, want 1", sum)
	}
}

func TestTruncNormalMeanSymmetric(t *testing.T) {
	// Symmetric truncation around the mean leaves the mean unchanged.
	got := TruncNormalMean(0.3, 0.1, 0.1, 0.5)
	if math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("symmetric truncated mean = %v, want 0.3", got)
	}
}

func TestTruncNormalMeanOneSided(t *testing.T) {
	// Truncating to the right of the mean must pull the mean right.
	got := TruncNormalMean(0, 1, 0.5, 4)
	if got <= 0.5 || got >= 4 {
		t.Fatalf("one-sided truncated mean = %v, want inside (0.5, 4)", got)
	}
}

func TestTruncNormalMeanNoMass(t *testing.T) {
	// Interval far above the distribution: collapses to nearer endpoint.
	got := TruncNormalMean(0, 0.01, 5, 6)
	if got != 5 {
		t.Fatalf("no-mass truncated mean = %v, want 5", got)
	}
	got = TruncNormalMean(10, 0.01, 5, 6)
	if got != 6 {
		t.Fatalf("no-mass truncated mean = %v, want 6", got)
	}
}

// squash maps an arbitrary float64 (including NaN/Inf) into [-1, 1] so
// property tests explore a physically meaningful domain.
func squash(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	return math.Tanh(x / 10)
}

func TestTruncNormalMeanPropertyWithinBounds(t *testing.T) {
	f := func(mean, spread, lo, width float64) bool {
		m0 := squash(mean) * 100
		stddev := math.Abs(squash(spread))*50 + 0.01
		l := squash(lo) * 100
		h := l + math.Abs(squash(width))*100 + 0.01
		m := TruncNormalMean(m0, stddev, l, h)
		return m >= l-1e-9 && m <= h+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncNormalVarNonNegativeAndBounded(t *testing.T) {
	f := func(mean, spread, lo, width float64) bool {
		m0 := squash(mean) * 100
		stddev := math.Abs(squash(spread))*50 + 0.01
		l := squash(lo) * 100
		h := l + math.Abs(squash(width))*100 + 0.01
		v := TruncNormalVar(m0, stddev, l, h)
		// Truncation never increases variance beyond the original, and
		// variance is bounded by the squared half-range.
		half := (h - l) / 2
		return v >= 0 && (v <= stddev*stddev+1e-9 || v <= half*half+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Fatalf("mean = %v, want 2.5", s.Mean)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Fatalf("median = %v, want 2.5", s.Median)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {110, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Must not mutate the input.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2.5, 4.5, 6.5, 8.5} // y = 2x + 0.5
	fit := FitLine(xs, ys)
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-0.5) > 1e-12 {
		t.Fatalf("fit = %+v, want slope 2 intercept 0.5", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	g := NewRNG(9)
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 0.055*x-0.324+g.Normal(0, 0.1))
	}
	fit := FitLine(xs, ys)
	if math.Abs(fit.Slope-0.055) > 0.005 {
		t.Fatalf("slope = %v, want about 0.055", fit.Slope)
	}
	if fit.R2 < 0.95 {
		t.Fatalf("R2 = %v, want > 0.95", fit.R2)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ysUp := []float64{2, 4, 6, 8, 10}
	ysDown := []float64{5, 4, 3, 2, 1}
	if got := Pearson(xs, ysUp); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect positive correlation = %v", got)
	}
	if got := Pearson(xs, ysDown); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect negative correlation = %v", got)
	}
	if got := Pearson(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Fatalf("constant sample correlation = %v", got)
	}
	if got := Pearson(nil, nil); got != 0 {
		t.Fatalf("empty correlation = %v", got)
	}
	// Independent noise has near-zero correlation.
	g := NewRNG(21)
	a := make([]float64, 3000)
	b := make([]float64, 3000)
	for i := range a {
		a[i], b[i] = g.Float64(), g.Float64()
	}
	if got := Pearson(a, b); math.Abs(got) > 0.05 {
		t.Fatalf("independent-noise correlation = %v", got)
	}
}

func TestPearsonPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1, 3, 9.9, -4, 15} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d, want 6", h.Total())
	}
	// -4 clamps to first bin, 15 clamps to last.
	if h.Counts[0] != 3 { // 0.5, 1, -4
		t.Fatalf("first bin = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9, 15
		t.Fatalf("last bin = %d, want 2", h.Counts[4])
	}
	fr := h.Fractions()
	if math.Abs(Sum(fr)-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", Sum(fr))
	}
}

func TestHistogramRenderNonEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.1)
	if h.Render(20) == "" {
		t.Fatal("empty render")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}

package stats

import "math"

// NormalPDF evaluates the Gaussian density N(mean, stddev^2) at x.
func NormalPDF(x, mean, stddev float64) float64 {
	if stddev <= 0 {
		panic("stats: NormalPDF requires stddev > 0")
	}
	z := (x - mean) / stddev
	return math.Exp(-0.5*z*z) / (stddev * math.Sqrt(2*math.Pi))
}

// NormalCDF evaluates the Gaussian cumulative distribution function of
// N(mean, stddev^2) at x.
func NormalCDF(x, mean, stddev float64) float64 {
	if stddev <= 0 {
		panic("stats: NormalCDF requires stddev > 0")
	}
	// erfc keeps full relative precision in the lower tail, where
	// 1+erf(z) would cancel catastrophically; truncated-moment formulas
	// depend on tail differences being accurate.
	z := (x - mean) / (stddev * math.Sqrt2)
	return 0.5 * math.Erfc(-z)
}

// StdNormalPDF is NormalPDF with mean 0 and stddev 1.
func StdNormalPDF(z float64) float64 { return NormalPDF(z, 0, 1) }

// StdNormalCDF is NormalCDF with mean 0 and stddev 1.
func StdNormalCDF(z float64) float64 { return NormalCDF(z, 0, 1) }

// TruncNormalMean returns the expectation of a N(mean, stddev^2)
// variable truncated to [lo, hi]:
//
//	E[X | lo <= X <= hi] = mean + stddev * (pdf(a) - pdf(b)) / (cdf(b) - cdf(a))
//
// with a = (lo-mean)/stddev and b = (hi-mean)/stddev. This is the
// integral the paper evaluates in Eq. (19) when it restricts the
// posterior of the power-reduction ratio to [gammaL, gammaU].
func TruncNormalMean(mean, stddev, lo, hi float64) float64 {
	if stddev <= 0 {
		panic("stats: TruncNormalMean requires stddev > 0")
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	a := (lo - mean) / stddev
	b := (hi - mean) / stddev
	z := StdNormalCDF(b) - StdNormalCDF(a)
	if z <= 1e-300 {
		// Effectively no mass inside the interval: the distribution sits
		// entirely on one side, so the truncated mean collapses to the
		// nearer endpoint.
		if mean < lo {
			return lo
		}
		return hi
	}
	// Clamp against residual floating-point error in extreme tails.
	return Clamp(mean+stddev*(StdNormalPDF(a)-StdNormalPDF(b))/z, lo, hi)
}

// TruncNormalVar returns the variance of a N(mean, stddev^2) variable
// truncated to [lo, hi].
func TruncNormalVar(mean, stddev, lo, hi float64) float64 {
	if stddev <= 0 {
		panic("stats: TruncNormalVar requires stddev > 0")
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	a := (lo - mean) / stddev
	b := (hi - mean) / stddev
	z := StdNormalCDF(b) - StdNormalCDF(a)
	if z <= 1e-300 {
		return 0
	}
	pa, pb := StdNormalPDF(a), StdNormalPDF(b)
	first := (a*pa - b*pb) / z
	// Guard the b -> +Inf and a -> -Inf limits where a*pdf(a) -> 0.
	if math.IsInf(b, 1) {
		first = a * pa / z
	}
	if math.IsInf(a, -1) {
		first = -b * pb / z
	}
	second := (pa - pb) / z
	v := stddev * stddev * (1 + first - second*second)
	if v < 0 {
		return 0
	}
	return v
}

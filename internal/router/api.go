// Package router implements the federation front door of a sharded
// LPVS deployment (DESIGN.md §17): one process that owns the shard
// map, fans the logical scheduling tick out to the shard daemons over
// the versioned /v1/shard/* API, and merges their per-channel
// decisions deterministically in VC-ID order. Devices keep speaking
// the exact same public v1 API they speak to a standalone daemon —
// the router forwards reports to the consistent-hash owner of the
// device's channel and proxies per-device reads, so a fleet can grow
// from one process to N without a client change.
package router

import (
	"lpvs/internal/server"
	"lpvs/internal/shard"
)

// VCDecision is one channel VC's decision inside a merged router
// tick, tagged with the shard node that solved it. The merged VCs
// slice is sorted by (VC ID, node), so the response bytes are
// identical for any fan-out completion order — the federation's
// analogue of the scheduler pool's serial-vs-parallel differential.
type VCDecision struct {
	Node string `json:"node"`
	server.ShardVCDecision
}

// ShardTickSummary is one shard's outcome within a router tick. A
// failed shard keeps its row (OK=false with the error) so a merged
// tick never silently pretends a shard's channels were scheduled.
type ShardTickSummary struct {
	Node    string `json:"node"`
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	Code    string `json:"code,omitempty"`
	Slot    int    `json:"slot"`
	Reports int    `json:"reports"`
	VCs     int    `json:"vcs"`
}

// TickResponse is the router's POST /v1/tick body: the per-shard
// outcomes, the merged per-channel decisions in VC-ID order, and the
// aggregate scheduling stats. Degraded is true when any shard
// degraded or failed; ShardErrors counts shards whose tick failed
// this round (their channels simply keep last slot's decisions).
type TickResponse struct {
	Slot        int                `json:"slot"`
	Epoch       string             `json:"epoch"`
	Reports     int                `json:"reports"`
	Eligible    int                `json:"eligible"`
	Selected    int                `json:"selected"`
	Swaps       int                `json:"swaps"`
	Degraded    bool               `json:"degraded"`
	ShardErrors int                `json:"shard_errors"`
	Shards      []ShardTickSummary `json:"shards"`
	VCs         []VCDecision       `json:"vcs"`
	Sched       server.TickStats   `json:"sched"`
}

// ShardStatus is one shard's row in the router's /v1/status. Status
// is the shard's own full status document when the probe succeeded.
type ShardStatus struct {
	Node   string                 `json:"node"`
	Addr   string                 `json:"addr"`
	OK     bool                   `json:"ok"`
	Error  string                 `json:"error,omitempty"`
	Status *server.StatusResponse `json:"status,omitempty"`
}

// StatusResponse is the router's GET /v1/status body. The flat
// fields describe THIS process only — the router's own slot counter,
// routing table, and lifetime forwarding counters — never shard
// state; per-shard truth lives exclusively in the Shards sub-objects
// so a dashboard cannot mistake a router for the fleet it fronts.
type StatusResponse struct {
	Mode         string  `json:"mode"` // always "router"
	Slot         int     `json:"slot"`
	Epoch        string  `json:"epoch"`
	Nodes        int     `json:"nodes"`
	KnownDevices int     `json:"known_devices"` // routing-table size
	StartUnixSec float64 `json:"start_unix_sec"`
	UptimeMS     int64   `json:"uptime_ms"`
	// Lifetime counters, this process only.
	Ticks            uint64        `json:"ticks"`
	TickShardErrors  uint64        `json:"tick_shard_errors"`
	ReportsForwarded uint64        `json:"reports_forwarded"`
	ForwardErrors    uint64        `json:"forward_errors"`
	ProxiedRequests  uint64        `json:"proxied_requests"`
	Reshards         uint64        `json:"reshards"`
	HandoffStates    uint64        `json:"handoff_states"`
	Shards           []ShardStatus `json:"shards"`
}

// ReshardResponse is the POST /v1/shard/map body: the installed
// map's identity plus what the reshard moved. Moved lists the
// channels whose owner changed; HandoffStates counts incremental
// stream states warm-handed to new owners (a channel whose old owner
// was unreachable cold-starts instead — safe behind the scheduler's
// config-signature guard).
type ReshardResponse struct {
	Epoch         string       `json:"epoch"`
	Replicas      int          `json:"replicas"`
	Nodes         []shard.Node `json:"nodes"`
	Moved         []string     `json:"moved,omitempty"`
	HandoffStates int          `json:"handoff_states"`
}

package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"lpvs/internal/client"
	"lpvs/internal/obs/audit"
	"lpvs/internal/server"
	"lpvs/internal/shard"
	"lpvs/internal/stats"
	"lpvs/internal/video"
	"lpvs/internal/wire"
)

// testStreams generates the shared channel set every test daemon
// serves: the same seeds everywhere, so any shard (or a standalone
// daemon) solves identical content.
func testStreams(tb testing.TB) (*video.Video, []*video.Video) {
	tb.Helper()
	def, err := video.Generate(stats.NewRNG(1), video.DefaultGenConfig("ch", video.Gaming, 90))
	if err != nil {
		tb.Fatal(err)
	}
	var extras []*video.Video
	for i, id := range []string{"music", "news"} {
		v, err := video.Generate(stats.NewRNG(int64(10+i)), video.DefaultGenConfig(id, video.Sports, 90))
		if err != nil {
			tb.Fatal(err)
		}
		extras = append(extras, v)
	}
	return def, extras
}

// newShard starts one shard-mode daemon serving the shared channel
// set and returns it with its base URL.
func newShard(tb testing.TB, nodeID string, cfg server.Config) (*server.Server, *httptest.Server) {
	tb.Helper()
	def, extras := testStreams(tb)
	cfg.Stream = def
	cfg.ExtraStreams = extras
	cfg.ShardMode = true
	cfg.NodeID = nodeID
	if cfg.ServerStreams == 0 {
		cfg.ServerStreams = -1
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1
	}
	s, err := server.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return s, ts
}

// newRouter builds a router over the given (id, url) members with
// fast-failing forwarding clients.
func newRouter(tb testing.TB, members map[string]string) (*Router, *httptest.Server) {
	tb.Helper()
	nodes := make([]shard.Node, 0, len(members))
	for id, addr := range members {
		nodes = append(nodes, shard.Node{ID: id, Addr: addr})
	}
	m, err := shard.New(nodes, 0)
	if err != nil {
		tb.Fatal(err)
	}
	rt, err := New(Config{
		Map:            m,
		DefaultChannel: "ch",
		ClientOptions:  []client.Option{client.WithRetries(1, time.Millisecond)},
	})
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	tb.Cleanup(ts.Close)
	return rt, ts
}

func postJSON(tb testing.TB, url string, body any, out any) *http.Response {
	tb.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { resp.Body.Close() })
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			tb.Fatal(err)
		}
	}
	return resp
}

func getJSON(tb testing.TB, url string, out any) *http.Response {
	tb.Helper()
	resp, err := http.Get(url)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { resp.Body.Close() })
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			tb.Fatal(err)
		}
	}
	return resp
}

func decodeEnvelope(tb testing.TB, resp *http.Response) server.ErrorBody {
	tb.Helper()
	var env server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		tb.Fatalf("status %d body is not a v1 envelope: %v", resp.StatusCode, err)
	}
	return env.Error
}

// report builds the i-th corpus instance: deterministic fields so the
// standalone and federated runs see byte-identical inputs.
func report(i int, channel string) server.ReportRequest {
	disp := "OLED"
	if i%3 == 0 {
		disp = "LCD"
	}
	return server.ReportRequest{
		DeviceID:         fmt.Sprintf("dev-%03d", i),
		ChannelID:        channel,
		DisplayType:      disp,
		Width:            1920,
		Height:           1080,
		DiagonalInch:     5.5 + 0.1*float64(i%10),
		Brightness:       0.3 + 0.05*float64(i%10),
		EnergyFrac:       0.05 + float64(i%90)/100,
		BatteryCapacityJ: 30_000 + 1_000*float64(i%20),
		BasePowerW:       0.3 + 0.01*float64(i%7),
	}
}

// The headline acceptance test: a router fronting a single shard is
// byte-identical to a standalone daemon over a 210-instance corpus —
// same canonical decision bytes per slot, and both audit logs replay
// cleanly. This is the federation's N=1 differential.
func TestRouterN1DifferentialAgainstStandalone(t *testing.T) {
	standaloneDir, shardDir := t.TempDir(), t.TempDir()

	def, extras := testStreams(t)
	plain, err := server.New(server.Config{
		Stream: def, ExtraStreams: extras, ServerStreams: -1, Lambda: 1,
		AuditDir: standaloneDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	plainTS := httptest.NewServer(plain.Handler())
	defer plainTS.Close()

	_, shardTS := newShard(t, "n1", server.Config{AuditDir: shardDir})
	_, routerTS := newRouter(t, map[string]string{"n1": shardTS.URL})

	const corpus = 210
	const rounds = 3
	for round := 0; round < rounds; round++ {
		batch := make([]server.ReportRequest, 0, corpus)
		for i := 0; i < corpus; i++ {
			r := report(i, "") // all on the default channel: single VC
			r.EnergyFrac = 0.05 + float64((i+37*round)%90)/100
			batch = append(batch, r)
		}
		var plainResp, fedResp server.BatchReportResponse
		if resp := postJSON(t, plainTS.URL+"/v1/report", batch, &plainResp); resp.StatusCode != 200 {
			t.Fatalf("round %d standalone batch status %d", round, resp.StatusCode)
		}
		if resp := postJSON(t, routerTS.URL+"/v1/report", batch, &fedResp); resp.StatusCode != 200 {
			t.Fatalf("round %d federated batch status %d", round, resp.StatusCode)
		}
		if plainResp.Accepted != corpus || fedResp.Accepted != corpus {
			t.Fatalf("round %d accepted %d/%d, want %d", round, plainResp.Accepted, fedResp.Accepted, corpus)
		}

		if resp := postJSON(t, plainTS.URL+"/v1/tick", nil, nil); resp.StatusCode != 200 {
			t.Fatalf("round %d standalone tick status %d", round, resp.StatusCode)
		}
		var tick TickResponse
		if resp := postJSON(t, routerTS.URL+"/v1/tick", nil, &tick); resp.StatusCode != 200 {
			t.Fatalf("round %d router tick status %d", round, resp.StatusCode)
		}
		if tick.ShardErrors != 0 || len(tick.VCs) != 1 || tick.Reports != corpus {
			t.Fatalf("round %d merged tick %+v", round, tick.Shards)
		}
	}

	readLog := func(dir string) []*audit.Record {
		raw, err := os.ReadFile(filepath.Join(dir, "audit.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		var recs []*audit.Record
		for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
			rec, err := audit.Decode(line)
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec)
		}
		return recs
	}
	plainRecs, shardRecs := readLog(standaloneDir), readLog(shardDir)
	if len(plainRecs) != rounds || len(shardRecs) != rounds {
		t.Fatalf("audit records %d/%d, want %d each", len(plainRecs), len(shardRecs), rounds)
	}
	for i := range plainRecs {
		if plainRecs[i].DecisionCanonical != shardRecs[i].DecisionCanonical {
			t.Fatalf("slot %d canonical decisions diverge between standalone and federated runs", i)
		}
		// Both logs replay: the federated deployment keeps the
		// standalone audit-forensics contract.
		for _, rec := range []*audit.Record{plainRecs[i], shardRecs[i]} {
			res, err := rec.Replay()
			if err != nil {
				t.Fatalf("slot %d replay: %v", i, err)
			}
			if !res.Match {
				t.Fatalf("slot %d replay diverged: %s", i, res.Diff())
			}
		}
	}
}

// The merge must be deterministic under concurrent fan-out: repeated
// federated ticks over two shards and three channels always produce
// VCs sorted by VC ID with stable node attribution. Run with -race
// this doubles as the fan-out data-race check.
func TestRouterTickMergeDeterministicConcurrent(t *testing.T) {
	_, ts1 := newShard(t, "n1", server.Config{})
	_, ts2 := newShard(t, "n2", server.Config{})
	rt, routerTS := newRouter(t, map[string]string{"n1": ts1.URL, "n2": ts2.URL})

	m := rt.Map()
	wantNode := map[string]string{}
	for _, ch := range []string{"ch", "music", "news"} {
		wantNode[ch] = m.Owner(ch).ID
	}

	channels := []string{"", "music", "news"}
	for round := 0; round < 4; round++ {
		batch := make([]server.ReportRequest, 0, 30)
		for i := 0; i < 30; i++ {
			batch = append(batch, report(i, channels[i%3]))
		}
		var br server.BatchReportResponse
		if resp := postJSON(t, routerTS.URL+"/v1/report", batch, &br); resp.StatusCode != 200 || br.Accepted != 30 {
			t.Fatalf("round %d batch accepted %d", round, br.Accepted)
		}
		var tick TickResponse
		if resp := postJSON(t, routerTS.URL+"/v1/tick", nil, &tick); resp.StatusCode != 200 {
			t.Fatalf("round %d tick status %d", round, resp.StatusCode)
		}
		if tick.Slot != round || tick.ShardErrors != 0 {
			t.Fatalf("round %d slot %d errors %d", round, tick.Slot, tick.ShardErrors)
		}
		if len(tick.VCs) != 3 {
			t.Fatalf("round %d merged %d VCs, want 3", round, len(tick.VCs))
		}
		if !sort.SliceIsSorted(tick.VCs, func(a, b int) bool { return tick.VCs[a].VC < tick.VCs[b].VC }) {
			t.Fatalf("round %d VCs not in VC-ID order: %+v", round, tick.VCs)
		}
		for _, vc := range tick.VCs {
			if vc.Node != wantNode[vc.VC] {
				t.Fatalf("round %d channel %q solved by %q, owner is %q", round, vc.VC, vc.Node, wantNode[vc.VC])
			}
			if len(vc.Canonical) == 0 {
				t.Fatalf("round %d channel %q missing canonical bytes", round, vc.VC)
			}
		}
	}
}

// MergeTicks is a pure function: identical inputs give byte-identical
// JSON regardless of how many times it runs.
func TestMergeTicksPure(t *testing.T) {
	nodes := []shard.Node{{ID: "a", Addr: "http://a"}, {ID: "b", Addr: "http://b"}}
	results := []*server.ShardTickResponse{
		{Node: "a", Slot: 4, Reports: 2, Eligible: 2, Selected: 1, VCs: []server.ShardVCDecision{
			{VC: "zeta", Reports: 2, Canonical: []byte("za")},
		}},
		{Node: "b", Slot: 4, Reports: 3, Eligible: 3, Selected: 2, VCs: []server.ShardVCDecision{
			{VC: "alpha", Reports: 1, Canonical: []byte("ab")},
			{VC: "mid", Reports: 2, Canonical: []byte("mb")},
		}},
	}
	errs := make([]error, 2)
	m1 := MergeTicks(7, "ep", nodes, results, errs)
	m2 := MergeTicks(7, "ep", nodes, results, errs)
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("MergeTicks not deterministic")
	}
	got := []string{m1.VCs[0].VC, m1.VCs[1].VC, m1.VCs[2].VC}
	if got[0] != "alpha" || got[1] != "mid" || got[2] != "zeta" {
		t.Fatalf("merged VC order %v", got)
	}
	if m1.Reports != 5 || m1.Selected != 3 {
		t.Fatalf("aggregates %+v", m1)
	}
	b1, _ := json.Marshal(m1)
	b2, _ := json.Marshal(m2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("merged JSON not byte-identical")
	}
}

// Killing one shard degrades the tick instead of failing it; killing
// all shards fails it with shard_unavailable.
func TestRouterKillOneShard(t *testing.T) {
	_, ts1 := newShard(t, "n1", server.Config{})
	_, ts2 := newShard(t, "n2", server.Config{})
	rt, routerTS := newRouter(t, map[string]string{"n1": ts1.URL, "n2": ts2.URL})

	batch := make([]server.ReportRequest, 0, 12)
	for i := 0; i < 12; i++ {
		batch = append(batch, report(i, []string{"", "music", "news"}[i%3]))
	}
	postJSON(t, routerTS.URL+"/v1/report", batch, nil)

	ts2.Close()
	deadNode := "n2"
	var tick TickResponse
	resp := postJSON(t, routerTS.URL+"/v1/tick", nil, &tick)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick with one dead shard status %d, want 200", resp.StatusCode)
	}
	if !tick.Degraded || tick.ShardErrors != 1 {
		t.Fatalf("degradation not reported: %+v", tick)
	}
	for _, sh := range tick.Shards {
		if sh.Node == deadNode && sh.OK {
			t.Fatalf("dead shard reported OK")
		}
		if sh.Node == deadNode && sh.Code == "" {
			t.Fatalf("dead shard row has no error code")
		}
	}
	// The surviving shard's channels still got decisions.
	m := rt.Map()
	for _, vc := range tick.VCs {
		if m.Owner(vc.VC).ID == deadNode {
			t.Fatalf("dead shard's channel %q has a decision", vc.VC)
		}
	}

	ts1.Close()
	resp = postJSON(t, routerTS.URL+"/v1/tick", nil, nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-dead tick status %d, want 502", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp); env.Code != server.CodeShardUnavailable {
		t.Fatalf("all-dead code %q", env.Code)
	}
}

// Router /v1/status never conflates router and shard state: flat
// fields are this process only, shard truth lives in the shards
// sub-objects, and an unreachable shard is reported unreachable.
func TestRouterStatusHonest(t *testing.T) {
	_, ts1 := newShard(t, "n1", server.Config{})
	ts2 := httptest.NewServer(http.NotFoundHandler())
	ts2.Close() // dead member
	_, routerTS := newRouter(t, map[string]string{"n1": ts1.URL, "n2": ts2.URL})

	// Drive one shard tick directly so the shard's slot advances ahead
	// of the router's (slot skew must be visible, not papered over).
	postJSON(t, ts1.URL+"/v1/shard/tick", nil, nil)

	var st StatusResponse
	if resp := getJSON(t, routerTS.URL+"/v1/status", &st); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if st.Mode != "router" {
		t.Fatalf("mode %q", st.Mode)
	}
	if st.Slot != 0 || st.Ticks != 0 {
		t.Fatalf("router flat fields leak shard state: slot=%d ticks=%d", st.Slot, st.Ticks)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("shards rows %d", len(st.Shards))
	}
	byNode := map[string]ShardStatus{}
	for _, sh := range st.Shards {
		byNode[sh.Node] = sh
	}
	if !byNode["n1"].OK || byNode["n1"].Status == nil || byNode["n1"].Status.Slot != 1 {
		t.Fatalf("live shard row %+v", byNode["n1"])
	}
	if byNode["n2"].OK || byNode["n2"].Error == "" || byNode["n2"].Status != nil {
		t.Fatalf("dead shard row claims state: %+v", byNode["n2"])
	}
}

// Reports partition to their channel owners in every codec, batch
// results keep caller-visible indices, and per-device reads proxy to
// the right shard afterwards.
func TestRouterReportPartitionAndProxy(t *testing.T) {
	s1, ts1 := newShard(t, "n1", server.Config{})
	s2, ts2 := newShard(t, "n2", server.Config{})
	rt, routerTS := newRouter(t, map[string]string{"n1": ts1.URL, "n2": ts2.URL})
	_ = s1
	_ = s2

	// Single JSON report.
	single := report(500, "music")
	var rep server.ReportResponse
	if resp := postJSON(t, routerTS.URL+"/v1/report", single, &rep); resp.StatusCode != 200 || !rep.Accepted {
		t.Fatalf("single forward failed: %d %+v", resp.StatusCode, rep)
	}
	owner := rt.Map().Owner("music").ID
	ownerTS := map[string]*httptest.Server{"n1": ts1, "n2": ts2}[owner]
	var ownSt server.StatusResponse
	getJSON(t, ownerTS.URL+"/v1/status", &ownSt)
	if ownSt.Devices != 1 {
		t.Fatalf("owner %s has %d devices after single forward", owner, ownSt.Devices)
	}

	// JSON batch with one bad record: index remapping must surface the
	// rejection under its original position.
	batch := make([]server.ReportRequest, 0, 9)
	for i := 0; i < 9; i++ {
		batch = append(batch, report(i, []string{"", "music", "news"}[i%3]))
	}
	batch[4].DisplayType = "PLASMA" // rejected by the shard
	var br server.BatchReportResponse
	if resp := postJSON(t, routerTS.URL+"/v1/report", batch, &br); resp.StatusCode != 200 {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if br.Accepted != 8 || br.Rejected != 1 {
		t.Fatalf("batch accepted %d rejected %d", br.Accepted, br.Rejected)
	}
	// JSON batch results are positional, like a standalone daemon's.
	if len(br.Results) != 9 {
		t.Fatalf("JSON batch results %d rows, want 9 positional", len(br.Results))
	}
	for i, res := range br.Results {
		if res.Accepted != (i != 4) || res.DeviceID != batch[i].DeviceID {
			t.Fatalf("result %d not remapped to original position: %+v", i, res)
		}
	}

	// Binary wire batch through the router.
	wbatch := []server.ReportRequest{report(100, ""), report(101, "music"), report(102, "news")}
	buf, err := wire.AppendBatch(nil, wbatch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(routerTS.URL+"/v1/report", wire.ContentType, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wbr server.BatchReportResponse
	if err := json.NewDecoder(resp.Body).Decode(&wbr); err != nil || wbr.Accepted != 3 {
		t.Fatalf("wire batch accepted %d (err %v)", wbr.Accepted, err)
	}

	// Tick, then proxy per-device reads and an observation.
	var tick TickResponse
	if resp := postJSON(t, routerTS.URL+"/v1/tick", nil, &tick); resp.StatusCode != 200 {
		t.Fatalf("tick status %d", resp.StatusCode)
	}
	var dec server.DecisionResponse
	if resp := getJSON(t, routerTS.URL+"/v1/decision?device="+single.DeviceID, &dec); resp.StatusCode != 200 {
		t.Fatalf("proxied decision status %d", resp.StatusCode)
	}
	if dec.DeviceID != single.DeviceID {
		t.Fatalf("proxied decision for %q", dec.DeviceID)
	}
	var pl server.PlaylistResponse
	if resp := getJSON(t, routerTS.URL+"/v1/playlist?device="+batch[0].DeviceID, &pl); resp.StatusCode != 200 {
		t.Fatalf("proxied playlist status %d", resp.StatusCode)
	}
	var ob server.ObserveResponse
	if resp := postJSON(t, routerTS.URL+"/v1/observe",
		server.ObserveRequest{DeviceID: single.DeviceID, Reduction: 0.2}, &ob); resp.StatusCode != 200 {
		t.Fatalf("proxied observe status %d", resp.StatusCode)
	}
	if ob.Observations == 0 {
		t.Fatalf("observation not folded: %+v", ob)
	}

	// Unknown device probes every shard, then answers unknown_device.
	resp2 := getJSON(t, routerTS.URL+"/v1/decision?device=ghost", nil)
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost status %d", resp2.StatusCode)
	}
	if env := decodeEnvelope(t, resp2); env.Code != server.CodeUnknownDevice {
		t.Fatalf("ghost code %q", env.Code)
	}
}

// Installing a new map on the router moves exactly the consistent-hash
// delta, warm-hands moved channels' scheduling state, and pushes the
// map to every member so ticks keep flowing under the new epoch.
func TestRouterReshardHandoff(t *testing.T) {
	_, ts1 := newShard(t, "n1", server.Config{})
	_, ts2 := newShard(t, "n2", server.Config{})
	rt, routerTS := newRouter(t, map[string]string{"n1": ts1.URL})

	// Warm incremental state for all three channels on n1.
	for round := 0; round < 2; round++ {
		batch := make([]server.ReportRequest, 0, 12)
		for i := 0; i < 12; i++ {
			batch = append(batch, report(i, []string{"", "music", "news"}[i%3]))
		}
		postJSON(t, routerTS.URL+"/v1/report", batch, nil)
		if resp := postJSON(t, routerTS.URL+"/v1/tick", nil, nil); resp.StatusCode != 200 {
			t.Fatalf("warmup tick %d failed", round)
		}
	}

	old := rt.Map()
	next, err := shard.New([]shard.Node{
		{ID: "n1", Addr: ts1.URL}, {ID: "n2", Addr: ts2.URL},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantMoved := shard.Moved(old, next, []string{"ch", "music", "news"})

	var rr ReshardResponse
	if resp := postJSON(t, routerTS.URL+"/v1/shard/map", next.Spec(), &rr); resp.StatusCode != 200 {
		t.Fatalf("reshard status %d", resp.StatusCode)
	}
	if rr.Epoch != next.Epoch() {
		t.Fatalf("installed epoch %s, want %s", rr.Epoch, next.Epoch())
	}
	sort.Strings(rr.Moved)
	if !reflect.DeepEqual(rr.Moved, wantMoved) {
		t.Fatalf("moved %v, want %v", rr.Moved, wantMoved)
	}
	if len(wantMoved) > 0 && rr.HandoffStates != len(wantMoved) {
		t.Fatalf("handed %d states for %d moved channels", rr.HandoffStates, len(wantMoved))
	}

	// Both members now hold the new epoch.
	for _, ts := range []*httptest.Server{ts1, ts2} {
		var mr server.ShardMapResponse
		if resp := getJSON(t, ts.URL+"/v1/shard/map", &mr); resp.StatusCode != 200 {
			t.Fatalf("member map status %d", resp.StatusCode)
		}
		if mr.Epoch != next.Epoch() {
			t.Fatalf("member epoch %s, want %s", mr.Epoch, next.Epoch())
		}
	}

	// Ticks keep flowing under the new map, channels now solved by
	// their new owners.
	batch := make([]server.ReportRequest, 0, 12)
	for i := 0; i < 12; i++ {
		batch = append(batch, report(i, []string{"", "music", "news"}[i%3]))
	}
	postJSON(t, routerTS.URL+"/v1/report", batch, nil)
	var tick TickResponse
	if resp := postJSON(t, routerTS.URL+"/v1/tick", nil, &tick); resp.StatusCode != 200 {
		t.Fatalf("post-reshard tick status %d", resp.StatusCode)
	}
	if tick.ShardErrors != 0 || len(tick.VCs) != 3 {
		t.Fatalf("post-reshard tick %+v", tick.Shards)
	}
	for _, vc := range tick.VCs {
		if vc.Node != next.Owner(vc.VC).ID {
			t.Fatalf("channel %q solved by %q after reshard, owner %q", vc.VC, vc.Node, next.Owner(vc.VC).ID)
		}
	}
}

// A shard holding a stale map 409s the tick; the router pushes its
// map and retries within the same fan-out, so one round-trip of skew
// self-heals without a failed tick.
func TestRouterEpochMismatchSelfHeals(t *testing.T) {
	_, ts1 := newShard(t, "n1", server.Config{})
	rt, routerTS := newRouter(t, map[string]string{"n1": ts1.URL})

	// Install a different-epoch map directly on the shard (fewer
	// replicas → different epoch, same membership).
	stale, err := shard.New([]shard.Node{{ID: "n1", Addr: ts1.URL}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if resp := postJSON(t, ts1.URL+"/v1/shard/map", stale.Spec(), nil); resp.StatusCode != 200 {
		t.Fatalf("stale install status %d", resp.StatusCode)
	}

	postJSON(t, routerTS.URL+"/v1/report", report(1, ""), nil)
	var tick TickResponse
	if resp := postJSON(t, routerTS.URL+"/v1/tick", nil, &tick); resp.StatusCode != 200 {
		t.Fatalf("tick status %d, want self-healed 200", resp.StatusCode)
	}
	if tick.ShardErrors != 0 {
		t.Fatalf("tick errors %d after self-heal", tick.ShardErrors)
	}
	var mr server.ShardMapResponse
	getJSON(t, ts1.URL+"/v1/shard/map", &mr)
	if mr.Epoch != rt.Map().Epoch() {
		t.Fatalf("shard epoch %s not converged to router's %s", mr.Epoch, rt.Map().Epoch())
	}
}

// The router speaks the same routing contract as the daemon: 405 +
// Allow on known paths, envelope 404 elsewhere, /healthz and /readyz
// live.
func TestRouterRoutingContract(t *testing.T) {
	_, ts1 := newShard(t, "n1", server.Config{})
	rt, routerTS := newRouter(t, map[string]string{"n1": ts1.URL})

	resp := getJSON(t, routerTS.URL+"/v1/tick", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/tick status %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow == "" {
		t.Fatal("405 without Allow header")
	}
	if env := decodeEnvelope(t, resp); env.Code != server.CodeMethodNotAllowed {
		t.Fatalf("405 code %q", env.Code)
	}

	resp = getJSON(t, routerTS.URL+"/v1/nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route status %d", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp); env.Code != server.CodeNotFound {
		t.Fatalf("404 code %q", env.Code)
	}

	if resp := getJSON(t, routerTS.URL+"/healthz", nil); resp.StatusCode != 200 {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
	if resp := getJSON(t, routerTS.URL+"/readyz", nil); resp.StatusCode != 200 {
		t.Fatalf("readyz %d", resp.StatusCode)
	}
	rt.SetReady(false)
	if resp := getJSON(t, routerTS.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz %d", resp.StatusCode)
	}

	var sr server.SLOResponse
	if resp := getJSON(t, routerTS.URL+"/v1/slo", &sr); resp.StatusCode != 200 || len(sr.Objectives) == 0 {
		t.Fatalf("slo status %d objectives %d", resp.StatusCode, len(sr.Objectives))
	}
	resp = getJSON(t, routerTS.URL+"/metrics", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("metrics %d", resp.StatusCode)
	}
}

// The merged fleet view concatenates the shards' channel rows and
// prefixes stream keys with their owning node.
func TestRouterFleetMerge(t *testing.T) {
	_, ts1 := newShard(t, "n1", server.Config{})
	_, ts2 := newShard(t, "n2", server.Config{})
	_, routerTS := newRouter(t, map[string]string{"n1": ts1.URL, "n2": ts2.URL})

	batch := make([]server.ReportRequest, 0, 12)
	for i := 0; i < 12; i++ {
		batch = append(batch, report(i, []string{"", "music", "news"}[i%3]))
	}
	postJSON(t, routerTS.URL+"/v1/report", batch, nil)
	postJSON(t, routerTS.URL+"/v1/tick", nil, nil)

	var fl server.FleetResponse
	if resp := getJSON(t, routerTS.URL+"/v1/fleet", &fl); resp.StatusCode != 200 {
		t.Fatalf("fleet status %d", resp.StatusCode)
	}
	seen := map[string]int{}
	for _, ch := range fl.Channels {
		seen[ch.Channel] += ch.Devices
	}
	if seen["ch"] != 4 || seen["music"] != 4 || seen["news"] != 4 {
		t.Fatalf("merged channel devices %v", seen)
	}
	for _, vs := range fl.Streams {
		if !bytes.ContainsRune([]byte(vs.Key), '/') {
			t.Fatalf("stream key %q not node-prefixed", vs.Key)
		}
	}
}

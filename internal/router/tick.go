package router

import (
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"

	"lpvs/internal/client"
	"lpvs/internal/server"
	"lpvs/internal/shard"
)

// This file is the router's scheduling data plane: one logical tick
// fanned out to every shard concurrently and merged back into a
// single deterministic response. The merge is a pure function over
// the (node, result) pairs — results land in a position-addressed
// slice and MergeTicks sorts the decisions by VC ID — so the
// response bytes are independent of which shard answered first. That
// is the federation's analogue of the scheduler pool's
// serial-vs-parallel differential, and the property the router's
// race-mode merge test pins.

// handleTick fans POST /v1/shard/tick out to every shard in the
// installed map and merges the per-channel decisions. A shard that
// fails keeps its row in the response (OK=false) and marks the tick
// Degraded; its channels simply keep their previous decisions until
// the next tick reaches it. Only when every shard fails does the
// router answer 502 shard_unavailable.
func (rt *Router) handleTick(w http.ResponseWriter, _ *http.Request) {
	m, nodes, callers := rt.snapshot()
	start := time.Now()

	results := make([]*server.ShardTickResponse, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = rt.tickShard(callers[i], nodes[i], m)
		}(i)
	}
	wg.Wait()

	rt.mu.Lock()
	slot := rt.slot
	rt.slot++
	rt.mu.Unlock()
	rt.ticks.Add(1)

	merged := MergeTicks(slot, m.Epoch(), nodes, results, errs)
	merged.Sched.DurationSec = time.Since(start).Seconds()
	if merged.ShardErrors == len(nodes) {
		server.WriteEnvelopeError(w, http.StatusBadGateway, server.CodeShardUnavailable,
			"all shards failed this tick")
		return
	}
	rt.log.Info("router tick", "slot", slot, "shards", len(nodes),
		"shard_errors", merged.ShardErrors, "vcs", len(merged.VCs),
		"reports", merged.Reports, "selected", merged.Selected,
		"duration_ms", merged.Sched.DurationSec*1000)
	writeJSON(w, http.StatusOK, merged)
}

// tickShard runs one shard's leg of the fan-out. On a 409
// shard_epoch_mismatch the router pushes its own map and retries the
// tick once — the normal convergence path right after a reshard when
// a shard missed the push.
func (rt *Router) tickShard(c *client.Caller, n shard.Node, m *shard.Map) (*server.ShardTickResponse, error) {
	req := server.ShardTickRequest{Node: n.ID, Epoch: m.Epoch()}
	callStart := time.Now()
	rt.tickShardCalls.Add(1)
	rt.mShardTicks.With(n.ID).Inc()

	var resp server.ShardTickResponse
	err := c.PostJSON("/v1/shard/tick", req, &resp)
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.Code == server.CodeEpochMismatch {
		if perr := c.PostJSON("/v1/shard/map", m.Spec(), nil); perr == nil {
			resp = server.ShardTickResponse{}
			err = c.PostJSON("/v1/shard/tick", req, &resp)
		}
	}
	rt.mShardTickDur.With(n.ID).Observe(time.Since(callStart).Seconds())
	if err != nil {
		rt.tickShardErrors.Add(1)
		rt.mShardErrors.With(n.ID).Inc()
		rt.log.Warn("shard tick failed", "node", n.ID, "err", err)
		return nil, err
	}
	return &resp, nil
}

// MergeTicks merges per-shard tick results into one deterministic
// response: decisions sorted by (VC ID, node) — channel IDs are
// globally unique across shards (each channel has exactly one
// consistent-hash owner), so this is the "decisions in VC-ID order"
// merge contract — and scheduling stats aggregated the same way a
// shard aggregates its channel VCs. Pure: same inputs, byte-identical
// output, regardless of fan-out completion order. nodes, results and
// errs are parallel slices; a nil result with its error represents a
// failed shard.
func MergeTicks(slot int, epoch string, nodes []shard.Node, results []*server.ShardTickResponse, errs []error) TickResponse {
	merged := TickResponse{
		Slot:   slot,
		Epoch:  epoch,
		Shards: make([]ShardTickSummary, len(nodes)),
		Sched:  server.TickStats{Slot: slot, Phase1Optimal: true},
	}
	for i, n := range nodes {
		sum := ShardTickSummary{Node: n.ID}
		res := results[i]
		if res == nil {
			sum.Error = "no response"
			if errs[i] != nil {
				sum.Error = errs[i].Error()
			}
			var apiErr *client.APIError
			if errors.As(errs[i], &apiErr) {
				sum.Code = apiErr.Code
			} else {
				sum.Code = server.CodeShardUnavailable
			}
			merged.ShardErrors++
			merged.Degraded = true
			merged.Shards[i] = sum
			continue
		}
		sum.OK = true
		sum.Slot = res.Slot
		sum.Reports = res.Reports
		sum.VCs = len(res.VCs)
		merged.Shards[i] = sum

		merged.Reports += res.Reports
		merged.Eligible += res.Eligible
		merged.Selected += res.Selected
		merged.Swaps += res.Swaps
		merged.Degraded = merged.Degraded || res.Degraded
		for _, vc := range res.VCs {
			merged.VCs = append(merged.VCs, VCDecision{Node: n.ID, ShardVCDecision: vc})
		}

		st := res.Sched
		merged.Sched.Reports += st.Reports
		merged.Sched.Eligible += st.Eligible
		merged.Sched.Selected += st.Selected
		merged.Sched.Swaps += st.Swaps
		merged.Sched.Phase1Optimal = merged.Sched.Phase1Optimal && st.Phase1Optimal
		merged.Sched.CompactSec += st.CompactSec
		merged.Sched.Phase1Sec += st.Phase1Sec
		merged.Sched.Phase2Sec += st.Phase2Sec
		merged.Sched.CPUSec += st.CPUSec
		merged.Sched.CacheHits += st.CacheHits
		merged.Sched.CacheMisses += st.CacheMisses
		merged.Sched.CacheEvictions += st.CacheEvictions
		merged.Sched.Phase1Nodes += st.Phase1Nodes
		merged.Sched.Phase1Warm = merged.Sched.Phase1Warm || st.Phase1Warm
		merged.Sched.Replayed = merged.Sched.Replayed || st.Replayed
		if st.Degraded {
			merged.Sched.Degraded = true
			merged.Sched.DegradedReason = st.DegradedReason
		}
	}
	sort.Slice(merged.VCs, func(a, b int) bool {
		if merged.VCs[a].VC != merged.VCs[b].VC {
			return merged.VCs[a].VC < merged.VCs[b].VC
		}
		return merged.VCs[a].Node < merged.VCs[b].Node
	})
	return merged
}

package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"sync"

	"lpvs/internal/client"
	"lpvs/internal/server"
	"lpvs/internal/wire"
)

// This file is the router's device-facing data plane. Reports are
// partitioned by the consistent-hash owner of each record's channel
// and forwarded concurrently (both JSON and the binary wire codec,
// re-framed per shard); per-device reads are proxied to the owner
// learned from the device's last report, falling back to probing the
// shards in node-ID order. Responses — including error envelopes —
// pass through verbatim, so a device cannot tell a router from a
// standalone daemon.

// channelOf resolves a report's channel for ownership hashing; an
// empty ChannelID means the fleet's default stream.
func (rt *Router) channelOf(req *server.ReportRequest) string {
	if req.ChannelID != "" {
		return req.ChannelID
	}
	return rt.cfg.DefaultChannel
}

// ownerCaller resolves the forwarding client owning a channel under
// the installed map.
func (rt *Router) ownerCaller(ch string) (string, *client.Caller) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := rt.m.Owner(ch)
	return n.ID, rt.callers[n.ID]
}

// noteDevice records a forwarded device's channel: the routing hint
// the per-device read proxy uses to skip probing.
func (rt *Router) noteDevice(id, ch string) {
	rt.mu.Lock()
	rt.devices[id] = ch
	rt.mu.Unlock()
}

func (rt *Router) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") == wire.ContentType {
		rt.handleReportWire(w, r)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			server.WriteEnvelopeError(w, http.StatusRequestEntityTooLarge, server.CodePayloadTooLarge,
				"request body too large")
			return
		}
		server.WriteEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, "read: "+err.Error())
		return
	}
	if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		var reqs []server.ReportRequest
		if err := json.Unmarshal(trimmed, &reqs); err != nil {
			server.WriteEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, "decode: "+err.Error())
			return
		}
		rt.forwardBatch(w, reqs, false)
		return
	}
	var req server.ReportRequest
	if err := json.Unmarshal(body, &req); err != nil {
		server.WriteEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, "decode: "+err.Error())
		return
	}
	rt.forwardSingle(w, req, false)
}

// handleReportWire forwards a binary report message: records are
// decoded streaming, partitioned by owner, and re-framed per shard in
// the same binary codec, so federation preserves the zero-copy
// ingest path end to end.
func (rt *Router) handleReportWire(w http.ResponseWriter, r *http.Request) {
	dec := wire.NewDecoder(r.Body)
	kind, count, err := dec.Begin()
	if err != nil {
		server.WriteEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, "binary report: "+err.Error())
		return
	}
	if count > server.DefaultMaxBatchRecords {
		server.WriteEnvelopeError(w, http.StatusRequestEntityTooLarge, server.CodeBatchTooLarge,
			"batch exceeds the router's record cap")
		return
	}
	reqs := make([]server.ReportRequest, count)
	for i := range reqs {
		if err := dec.Next(&reqs[i]); err != nil {
			rt.writeWireError(w, err)
			return
		}
	}
	if err := dec.Finish(); err != nil {
		rt.writeWireError(w, err)
		return
	}
	if kind == wire.KindSingle {
		rt.forwardSingle(w, reqs[0], true)
		return
	}
	rt.forwardBatch(w, reqs, true)
}

func (rt *Router) writeWireError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, wire.ErrVersion):
		server.WriteEnvelopeError(w, http.StatusUnsupportedMediaType, server.CodeUnsupportedMedia,
			"binary report: "+err.Error())
	case errors.As(err, &tooBig):
		server.WriteEnvelopeError(w, http.StatusRequestEntityTooLarge, server.CodePayloadTooLarge,
			"request body too large")
	default:
		server.WriteEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest,
			"binary report: "+err.Error())
	}
}

// forwardSingle forwards one report to its channel's owner,
// preserving the caller's codec.
func (rt *Router) forwardSingle(w http.ResponseWriter, req server.ReportRequest, binary bool) {
	ch := rt.channelOf(&req)
	nodeID, c := rt.ownerCaller(ch)
	if c == nil {
		server.WriteEnvelopeError(w, http.StatusBadGateway, server.CodeShardUnavailable,
			"no forwarding client for node "+nodeID)
		return
	}
	rt.forwards.Add(1)
	var resp server.ReportResponse
	var err error
	if binary {
		var buf []byte
		if buf, err = wire.AppendSingle(nil, &req); err == nil {
			err = c.PostRaw("/v1/report", wire.ContentType, buf, &resp)
		}
	} else {
		err = c.PostJSON("/v1/report", req, &resp)
	}
	if err != nil {
		rt.forwardErrors.Add(1)
		writeUpstream(w, err)
		return
	}
	rt.noteDevice(req.DeviceID, ch)
	writeJSON(w, http.StatusOK, resp)
}

// shardBatch is one shard's slice of a partitioned batch: the records
// routed to it plus each record's index in the original batch, so
// per-record errors merge back under their caller-visible index.
type shardBatch struct {
	node string
	c    *client.Caller
	reqs []server.ReportRequest
	idx  []int
}

// forwardBatch partitions a batch by channel owner, forwards each
// slice concurrently (re-framed in the caller's codec), and merges
// the shard responses preserving original record indices. Records
// whose shard failed are reported rejected with shard_unavailable —
// the batch contract stays "every record accounted for" even when
// part of the fleet is down.
func (rt *Router) forwardBatch(w http.ResponseWriter, reqs []server.ReportRequest, binary bool) {
	rt.mu.Lock()
	byNode := map[string]*shardBatch{}
	for i := range reqs {
		ch := rt.channelOf(&reqs[i])
		n := rt.m.Owner(ch)
		sb := byNode[n.ID]
		if sb == nil {
			sb = &shardBatch{node: n.ID, c: rt.callers[n.ID]}
			byNode[n.ID] = sb
		}
		sb.reqs = append(sb.reqs, reqs[i])
		sb.idx = append(sb.idx, i)
		rt.devices[reqs[i].DeviceID] = ch
	}
	slot := rt.slot
	rt.mu.Unlock()

	batches := make([]*shardBatch, 0, len(byNode))
	for _, sb := range byNode {
		batches = append(batches, sb)
	}
	sort.Slice(batches, func(a, b int) bool { return batches[a].node < batches[b].node })

	resps := make([]*server.BatchReportResponse, len(batches))
	errs := make([]error, len(batches))
	var wg sync.WaitGroup
	for i, sb := range batches {
		wg.Add(1)
		go func(i int, sb *shardBatch) {
			defer wg.Done()
			rt.forwards.Add(uint64(len(sb.reqs)))
			if sb.c == nil {
				errs[i] = errors.New("no forwarding client for node " + sb.node)
				return
			}
			var resp server.BatchReportResponse
			var err error
			if binary {
				var buf []byte
				if buf, err = wire.AppendBatch(nil, sb.reqs); err == nil {
					err = sb.c.PostRaw("/v1/report", wire.ContentType, buf, &resp)
				}
			} else {
				err = sb.c.PostJSON("/v1/report", sb.reqs, &resp)
			}
			if err != nil {
				errs[i] = err
				return
			}
			resps[i] = &resp
		}(i, sb)
	}
	wg.Wait()

	// Merge preserving the caller's codec convention: the JSON batch
	// response is a full positional Results array (one row per record,
	// original order), the binary one is rejected-only rows addressed
	// by Index — exactly what a standalone daemon would have answered.
	merged := server.BatchReportResponse{Slot: slot}
	if !binary {
		merged.Results = make([]server.BatchReportResult, len(reqs))
	}
	place := func(sb *shardBatch, shardIdx int, res server.BatchReportResult) {
		global := sb.idx[shardIdx]
		if binary {
			res.Index = global
			merged.Results = append(merged.Results, res)
			return
		}
		res.Index = 0 // positional, like the standalone JSON batch
		merged.Results[global] = res
	}
	for i, sb := range batches {
		if resps[i] == nil {
			rt.forwardErrors.Add(uint64(len(sb.reqs)))
			merged.Rejected += len(sb.reqs)
			msg := "shard unavailable"
			if errs[i] != nil {
				msg = errs[i].Error()
			}
			for j := range sb.reqs {
				place(sb, j, server.BatchReportResult{
					DeviceID: sb.reqs[j].DeviceID,
					Error: &server.ErrorBody{
						Code: server.CodeShardUnavailable, Message: msg, Retryable: true,
					},
				})
			}
			continue
		}
		merged.Accepted += resps[i].Accepted
		merged.Rejected += resps[i].Rejected
		if !binary && len(resps[i].Results) == len(sb.reqs) {
			for j, res := range resps[i].Results {
				place(sb, j, res)
			}
			continue
		}
		for _, res := range resps[i].Results {
			shardIdx := res.Index
			place(sb, shardIdx, res)
		}
	}
	if binary {
		sort.Slice(merged.Results, func(a, b int) bool {
			return merged.Results[a].Index < merged.Results[b].Index
		})
	}
	writeJSON(w, http.StatusOK, merged)
}

// candidates builds the probe order for a per-device read: the owner
// of the device's last-reported channel first, then every node in ID
// order. Deterministic, so repeated lookups behave identically on
// every router replica.
func (rt *Router) candidates(deviceID string) []*client.Caller {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []*client.Caller
	seen := map[string]bool{}
	if ch, ok := rt.devices[deviceID]; ok {
		n := rt.m.Owner(ch)
		if c := rt.callers[n.ID]; c != nil {
			out = append(out, c)
			seen[n.ID] = true
		}
	}
	for _, n := range rt.m.Nodes() {
		if !seen[n.ID] {
			if c := rt.callers[n.ID]; c != nil {
				out = append(out, c)
			}
		}
	}
	return out
}

// proxyDeviceGet forwards a per-device GET (decision, chunk,
// playlist, explain) to the device's shard, probing in candidate
// order when the routing table has no hint. Probing continues only on
// unknown_device — any other failure is the device's real answer.
func (rt *Router) proxyDeviceGet(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("device")
	if id == "" {
		server.WriteEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, "missing device parameter")
		return
	}
	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	rt.proxies.Add(1)
	rt.forEachCandidate(w, id, func(c *client.Caller, out *json.RawMessage) error {
		return c.GetJSON(path, out)
	})
}

// handleObserve forwards a reduction observation to the device's
// shard with the same probe strategy as the read proxy.
func (rt *Router) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req server.ObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		server.WriteEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, "decode: "+err.Error())
		return
	}
	if req.DeviceID == "" {
		server.WriteEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, "missing device_id")
		return
	}
	rt.proxies.Add(1)
	rt.forEachCandidate(w, req.DeviceID, func(c *client.Caller, out *json.RawMessage) error {
		return c.PostJSON("/v1/observe", req, out)
	})
}

// forEachCandidate runs one proxied call against the device's
// candidate shards until one answers with anything other than
// unknown_device, then relays that answer verbatim.
func (rt *Router) forEachCandidate(w http.ResponseWriter, deviceID string, call func(*client.Caller, *json.RawMessage) error) {
	var lastErr error
	for _, c := range rt.candidates(deviceID) {
		var raw json.RawMessage
		err := call(c, &raw)
		if err == nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(raw)
			return
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.Code == server.CodeUnknownDevice {
			lastErr = err
			continue
		}
		writeUpstream(w, err)
		return
	}
	if lastErr != nil {
		writeUpstream(w, lastErr)
		return
	}
	server.WriteEnvelopeError(w, http.StatusNotFound, server.CodeUnknownDevice,
		"unknown device "+deviceID)
}

package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lpvs/internal/client"
	"lpvs/internal/obs"
	"lpvs/internal/obs/slo"
	"lpvs/internal/server"
	"lpvs/internal/shard"
)

// Config configures a router process.
type Config struct {
	// Map is the initial shard map (required). Every node in it gets a
	// resilient forwarding client (shared retry/breaker/budget stack
	// with the public edge client).
	Map *shard.Map
	// DefaultChannel is the channel assumed for reports that carry no
	// ChannelID — it must match the shards' default stream ID, or the
	// router and the shards would disagree on which VC such devices
	// belong to.
	DefaultChannel string
	// ClientOptions tune the per-shard forwarding transport (retries,
	// breaker, retry budget, HTTP client) — the same option set the
	// public edge client accepts.
	ClientOptions []client.Option
	// MaxBodyBytes caps POST bodies (0 = server.DefaultMaxBodyBytes,
	// negative = unbounded), mirroring the edge daemon's guardrail.
	MaxBodyBytes int64
	// Logger receives operational logs; nil discards them.
	Logger *slog.Logger
}

// Router is the federation front door: it owns the shard map, fans
// ticks out, forwards reports to channel owners, and proxies
// per-device reads. One Router instance is one process personality —
// it holds no scheduling state of its own, only routing state.
type Router struct {
	cfg   Config
	log   *slog.Logger
	reg   *obs.Registry
	httpM *obs.HTTPMetrics
	slo   *slo.Engine
	start time.Time
	ready atomic.Bool

	// Lifetime counters (status + SLO sources; atomics so SLO
	// evaluation never touches mu).
	ticks           atomic.Uint64
	tickShardCalls  atomic.Uint64
	tickShardErrors atomic.Uint64
	forwards        atomic.Uint64
	forwardErrors   atomic.Uint64
	proxies         atomic.Uint64
	reshards        atomic.Uint64
	handoffStates   atomic.Uint64

	// Per-node labeled series.
	mShardTicks   *obs.CounterVec
	mShardErrors  *obs.CounterVec
	mShardTickDur *obs.HistogramVec

	mu      sync.Mutex
	m       *shard.Map
	callers map[string]*client.Caller // node ID -> forwarding client
	devices map[string]string         // device ID -> channel (routing hints)
	slot    int
}

// New builds a router over cfg.Map. The per-node forwarding clients
// share the edge client's resilience stack; a node keeps its breaker
// and budget state across reshards as long as it stays a member.
func New(cfg Config) (*Router, error) {
	if cfg.Map == nil {
		return nil, fmt.Errorf("router: nil shard map")
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = server.DefaultMaxBodyBytes
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	rt := &Router{
		cfg:     cfg,
		log:     log,
		reg:     obs.NewRegistry(),
		start:   time.Now(),
		m:       cfg.Map,
		callers: map[string]*client.Caller{},
		devices: map[string]string{},
	}
	rt.ready.Store(true)
	for _, n := range cfg.Map.Nodes() {
		c, err := client.NewCaller(n.Addr, cfg.ClientOptions...)
		if err != nil {
			return nil, fmt.Errorf("router: node %s: %w", n.ID, err)
		}
		rt.callers[n.ID] = c
	}
	rt.httpM = obs.NewHTTPMetrics(rt.reg, log)
	rt.registerMetrics()
	eng, err := slo.NewEngine(slo.Config{Logger: log},
		slo.Objective{
			Name:        "shard-tick-errors",
			Description: "Per-shard tick fan-out calls must succeed.",
			Target:      0.99,
			Source: func() (float64, float64) {
				return float64(rt.tickShardErrors.Load()), float64(rt.tickShardCalls.Load())
			},
		},
		slo.Objective{
			Name:        "forward-errors",
			Description: "Report forwards to shard owners must succeed.",
			Target:      0.99,
			Source: func() (float64, float64) {
				return float64(rt.forwardErrors.Load()), float64(rt.forwards.Load())
			},
		},
	)
	if err != nil {
		return nil, err
	}
	rt.slo = eng
	eng.Register(rt.reg)
	return rt, nil
}

func (rt *Router) registerMetrics() {
	rt.reg.GaugeFunc("lpvs_shard_nodes",
		"Shard nodes in the installed map.", func() float64 {
			rt.mu.Lock()
			defer rt.mu.Unlock()
			return float64(len(rt.m.Nodes()))
		})
	rt.reg.CounterFunc("lpvs_router_ticks_total",
		"Federated ticks fanned out by this router.", func() float64 { return float64(rt.ticks.Load()) })
	rt.reg.CounterFunc("lpvs_router_reports_forwarded_total",
		"Device reports forwarded to shard owners.", func() float64 { return float64(rt.forwards.Load()) })
	rt.reg.CounterFunc("lpvs_router_forward_errors_total",
		"Report forwards that failed.", func() float64 { return float64(rt.forwardErrors.Load()) })
	rt.reg.CounterFunc("lpvs_router_proxied_total",
		"Per-device reads proxied to shards.", func() float64 { return float64(rt.proxies.Load()) })
	rt.reg.CounterFunc("lpvs_router_reshards_total",
		"Shard-map installs accepted.", func() float64 { return float64(rt.reshards.Load()) })
	rt.reg.CounterFunc("lpvs_router_handoff_states_total",
		"Incremental stream states warm-handed during reshards.", func() float64 { return float64(rt.handoffStates.Load()) })
	rt.mShardTicks = rt.reg.CounterVec("lpvs_shard_ticks_total",
		"Shard tick calls, by node.", "node")
	rt.mShardErrors = rt.reg.CounterVec("lpvs_shard_tick_errors_total",
		"Failed shard tick calls, by node.", "node")
	rt.mShardTickDur = rt.reg.HistogramVec("lpvs_shard_tick_seconds",
		"Shard tick call wall time, by node.", obs.DefBuckets(), "node")
}

// SLO exposes the router's burn-rate engine (cmd/lpvsd runs its
// sampling loop; tests evaluate it directly).
func (rt *Router) SLO() *slo.Engine { return rt.slo }

// Registry exposes the router's metric registry so the owner can add
// process-level collectors (build info, runtime self-telemetry).
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// SetReady flips the readiness probe, mirroring the edge daemon's
// drain semantics.
func (rt *Router) SetReady(ready bool) { rt.ready.Store(ready) }

// Map returns the currently installed shard map.
func (rt *Router) Map() *shard.Map {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.m
}

// snapshot returns the map and a node-ordered caller slice to fan out
// against, without holding mu across network calls.
func (rt *Router) snapshot() (*shard.Map, []shard.Node, []*client.Caller) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	nodes := rt.m.Nodes()
	callers := make([]*client.Caller, len(nodes))
	for i, n := range nodes {
		callers[i] = rt.callers[n.ID]
	}
	return rt.m, nodes, callers
}

type route struct {
	method string
	path   string
	h      http.HandlerFunc
}

// Handler builds the router's HTTP surface: the public v1 device API
// (forwarded), the federation control plane, and the obs endpoints —
// with the same 405+Allow and envelope-404 routing contract as the
// edge daemon.
func (rt *Router) Handler() http.Handler {
	routes := []route{
		{method: "POST", path: "/v1/report", h: rt.handleReport},
		{method: "POST", path: "/v1/tick", h: rt.handleTick},
		{method: "GET", path: "/v1/decision", h: rt.proxyDeviceGet},
		{method: "GET", path: "/v1/chunk", h: rt.proxyDeviceGet},
		{method: "GET", path: "/v1/playlist", h: rt.proxyDeviceGet},
		{method: "GET", path: "/v1/explain", h: rt.proxyDeviceGet},
		{method: "POST", path: "/v1/observe", h: rt.handleObserve},
		{method: "GET", path: "/v1/status", h: rt.handleStatus},
		{method: "GET", path: "/v1/fleet", h: rt.handleFleet},
		{method: "GET", path: "/v1/slo", h: rt.handleSLO},
		{method: "GET", path: "/v1/shard/map", h: rt.handleMapGet},
		{method: "POST", path: "/v1/shard/map", h: rt.handleMapPost},
		{method: "GET", path: "/metrics", h: rt.handleMetrics},
		{method: "GET", path: "/healthz", h: func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
		}},
		{method: "GET", path: "/readyz", h: rt.handleReadyz},
	}
	mux := http.NewServeMux()
	allow := map[string][]string{}
	for _, r := range routes {
		var h http.Handler = r.h
		if r.method == "POST" && rt.cfg.MaxBodyBytes > 0 {
			max := rt.cfg.MaxBodyBytes
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				req.Body = http.MaxBytesReader(w, req.Body, max)
				inner.ServeHTTP(w, req)
			})
		}
		pattern := r.method + " " + r.path
		mux.Handle(pattern, rt.httpM.Instrument(pattern, h))
		allow[r.path] = append(allow[r.path], r.method)
	}
	for path, methods := range allow {
		sort.Strings(methods)
		ms := methods
		mux.Handle(path, rt.httpM.Instrument(path, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", joinComma(ms))
			server.WriteEnvelopeError(w, http.StatusMethodNotAllowed, server.CodeMethodNotAllowed,
				fmt.Sprintf("method %s not allowed (allow: %s)", r.Method, joinComma(ms)))
		})))
	}
	mux.Handle("/", rt.httpM.Instrument("fallback", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		server.WriteEnvelopeError(w, http.StatusNotFound, server.CodeNotFound, "no such route: "+r.URL.Path)
	})))
	return mux
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeUpstream renders an upstream call failure: a shard's envelope
// error passes through verbatim (status, code, and prose), anything
// else — dial failure, open breaker, exhausted retries — becomes a
// 502 shard_unavailable.
func writeUpstream(w http.ResponseWriter, err error) {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		server.WriteEnvelopeError(w, apiErr.Status, apiErr.Code, apiErr.Message)
		return
	}
	server.WriteEnvelopeError(w, http.StatusBadGateway, server.CodeShardUnavailable, err.Error())
}

func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !rt.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, server.ReadyResponse{Ready: false, Reason: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, server.ReadyResponse{Ready: true})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rt.reg.Handler().ServeHTTP(w, r)
}

func (rt *Router) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, server.SLOResponse{
		EvalUnixSec: float64(time.Now().UnixNano()) / 1e9,
		Objectives:  rt.slo.Evaluate(),
	})
}

// handleStatus reports this process's flat fields (router state only
// — never shard state) plus one sub-object per shard with the
// shard's own live status document. A shard that cannot be reached
// keeps its row with OK=false, so the fleet view never understates
// membership.
func (rt *Router) handleStatus(w http.ResponseWriter, _ *http.Request) {
	m, nodes, callers := rt.snapshot()
	shards := make([]ShardStatus, len(nodes))
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shards[i] = ShardStatus{Node: nodes[i].ID, Addr: nodes[i].Addr}
			var st server.StatusResponse
			if err := callers[i].GetJSON("/v1/status", &st); err != nil {
				shards[i].Error = err.Error()
				return
			}
			shards[i].OK = true
			shards[i].Status = &st
		}(i)
	}
	wg.Wait()

	rt.mu.Lock()
	slot := rt.slot
	known := len(rt.devices)
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, StatusResponse{
		Mode:             "router",
		Slot:             slot,
		Epoch:            m.Epoch(),
		Nodes:            len(nodes),
		KnownDevices:     known,
		StartUnixSec:     float64(rt.start.UnixNano()) / 1e9,
		UptimeMS:         time.Since(rt.start).Milliseconds(),
		Ticks:            rt.ticks.Load(),
		TickShardErrors:  rt.tickShardErrors.Load(),
		ReportsForwarded: rt.forwards.Load(),
		ForwardErrors:    rt.forwardErrors.Load(),
		ProxiedRequests:  rt.proxies.Load(),
		Reshards:         rt.reshards.Load(),
		HandoffStates:    rt.handoffStates.Load(),
		Shards:           shards,
	})
}

// handleFleet merges the shards' fleet rollups. Each channel is owned
// by exactly one shard, so the channel rows concatenate; stream rows
// get their owning node prefixed onto the state key so per-shard
// streams with the same key stay distinguishable.
func (rt *Router) handleFleet(w http.ResponseWriter, _ *http.Request) {
	_, nodes, callers := rt.snapshot()
	resps := make([]*server.FleetResponse, len(nodes))
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var fr server.FleetResponse
			if err := callers[i].GetJSON("/v1/fleet", &fr); err == nil {
				resps[i] = &fr
			}
		}(i)
	}
	wg.Wait()

	rt.mu.Lock()
	merged := server.FleetResponse{Slot: rt.slot}
	rt.mu.Unlock()
	for i, fr := range resps {
		if fr == nil {
			continue
		}
		if fr.VCLabelBudget > merged.VCLabelBudget {
			merged.VCLabelBudget = fr.VCLabelBudget
		}
		merged.SeriesDropped += fr.SeriesDropped
		merged.Channels = append(merged.Channels, fr.Channels...)
		for _, vs := range fr.Streams {
			vs.Key = nodes[i].ID + "/" + vs.Key
			merged.Streams = append(merged.Streams, vs)
		}
	}
	sort.Slice(merged.Channels, func(a, b int) bool {
		return merged.Channels[a].Channel < merged.Channels[b].Channel
	})
	writeJSON(w, http.StatusOK, merged)
}

func (rt *Router) handleMapGet(w http.ResponseWriter, _ *http.Request) {
	m := rt.Map()
	writeJSON(w, http.StatusOK, server.ShardMapResponse{
		Epoch:    m.Epoch(),
		Replicas: m.Replicas(),
		Nodes:    m.Nodes(),
	})
}

// handleMapPost installs a new shard map: it computes which channels
// change owner, warm-hands their incremental scheduling state from
// old owner to new owner, installs the map, and pushes it to every
// member shard. The whole reshard runs under mu — ticks quiesce for
// its duration, which is what makes the handoff race-free (no shard
// can solve a moved channel mid-copy). A channel whose old owner is
// unreachable simply cold-starts on the new owner; the scheduler's
// config-signature guard makes any handoff skip decision-safe.
func (rt *Router) handleMapPost(w http.ResponseWriter, r *http.Request) {
	var spec shard.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		server.WriteEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, "decode: "+err.Error())
		return
	}
	next, err := shard.FromSpec(spec)
	if err != nil {
		server.WriteEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, err.Error())
		return
	}

	rt.mu.Lock()
	defer rt.mu.Unlock()

	// Forwarding clients for new members; departing members' callers
	// are dropped (their breaker state goes with them), surviving
	// members keep theirs.
	nextCallers := map[string]*client.Caller{}
	for _, n := range next.Nodes() {
		if c, ok := rt.callers[n.ID]; ok && c.Base() == n.Addr {
			nextCallers[n.ID] = c
			continue
		}
		c, err := client.NewCaller(n.Addr, rt.cfg.ClientOptions...)
		if err != nil {
			server.WriteEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest,
				fmt.Sprintf("node %s: %v", n.ID, err))
			return
		}
		nextCallers[n.ID] = c
	}

	moved := rt.movedChannelsLocked(next)
	handed := 0
	for _, ch := range moved {
		oldOwner := rt.m.Owner(ch)
		newOwner := next.Owner(ch)
		oldC, newC := rt.callers[oldOwner.ID], nextCallers[newOwner.ID]
		if oldC == nil || newC == nil {
			continue
		}
		handed += rt.handoffChannel(ch, oldC, newC)
	}

	rt.m = next
	rt.callers = nextCallers
	rt.reshards.Add(1)
	rt.handoffStates.Add(uint64(handed))

	// Push the new map to every member so their epoch guards accept
	// the next tick without a mismatch round-trip. Push failures are
	// non-fatal: the tick path re-pushes on shard_epoch_mismatch.
	spec = next.Spec()
	for id, c := range nextCallers {
		if err := c.PostJSON("/v1/shard/map", spec, nil); err != nil {
			rt.log.Warn("shard map push failed", "node", id, "err", err)
		}
	}

	rt.log.Info("reshard installed", "epoch", next.Epoch(),
		"nodes", len(next.Nodes()), "moved", len(moved), "handoff_states", handed)
	writeJSON(w, http.StatusOK, ReshardResponse{
		Epoch:         next.Epoch(),
		Replicas:      next.Replicas(),
		Nodes:         next.Nodes(),
		Moved:         moved,
		HandoffStates: handed,
	})
}

// movedChannelsLocked lists the channels known to this router whose
// owner differs between the installed and the next map.
func (rt *Router) movedChannelsLocked(next *shard.Map) []string {
	seen := map[string]bool{}
	if rt.cfg.DefaultChannel != "" {
		seen[rt.cfg.DefaultChannel] = true
	}
	for _, ch := range rt.devices {
		seen[ch] = true
	}
	chans := make([]string, 0, len(seen))
	for ch := range seen {
		chans = append(chans, ch)
	}
	sort.Strings(chans)
	return shard.Moved(rt.m, next, chans)
}

// handoffChannel copies one channel's incremental scheduling state
// from its old owner to its new one, returning how many states were
// restored (0 on any failure — the channel then cold-starts, which
// is always decision-safe).
func (rt *Router) handoffChannel(ch string, oldC, newC *client.Caller) int {
	q := url.Values{"key": []string{"ch:" + ch}}
	var st server.ShardStateResponse
	if err := oldC.GetJSON("/v1/shard/state?"+q.Encode(), &st); err != nil {
		rt.log.Warn("handoff export failed; channel cold-starts", "channel", ch, "err", err)
		return 0
	}
	if len(st.States) == 0 {
		return 0
	}
	var ho server.ShardHandoffResponse
	if err := newC.PostJSON("/v1/shard/handoff", server.ShardHandoffRequest{States: st.States}, &ho); err != nil {
		rt.log.Warn("handoff import failed; channel cold-starts", "channel", ch, "err", err)
		return 0
	}
	return ho.Restored
}

package ilp

import (
	"testing"
	"time"

	"lpvs/internal/stats"
)

// An already-expired deadline must degrade immediately: the solver
// returns exactly the greedy solution (never a partial incumbent),
// flagged Degraded, and re-running reproduces it bit for bit.
func TestBranchBoundExpiredDeadlineIsGreedy(t *testing.T) {
	rng := stats.NewRNG(7)
	past := time.Now().Add(-time.Hour)
	for i := 0; i < 60; i++ {
		p := randomProblem(rng, 2+rng.Intn(40), 1+rng.Intn(2))
		sol, err := BranchBound(p, BBConfig{Deadline: past})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if !sol.Degraded {
			t.Fatalf("instance %d: expired deadline not flagged degraded", i)
		}
		if sol.Optimal {
			t.Fatalf("instance %d: degraded solution claims optimality", i)
		}
		if !p.Feasible(sol.X) {
			t.Fatalf("instance %d: degraded solution infeasible", i)
		}
		g := Greedy(p)
		if sol.Value != g.Value {
			t.Fatalf("instance %d: degraded value %v != greedy %v", i, sol.Value, g.Value)
		}
		for j := range sol.X {
			if sol.X[j] != g.X[j] {
				t.Fatalf("instance %d: degraded assignment differs from greedy at item %d", i, j)
			}
		}
		again, err := BranchBound(p, BBConfig{Deadline: past})
		if err != nil {
			t.Fatal(err)
		}
		for j := range sol.X {
			if sol.X[j] != again.X[j] {
				t.Fatalf("instance %d: degraded solve not deterministic at item %d", i, j)
			}
		}
	}
}

// A deadline generous enough for the search to finish must change
// nothing: same assignment, same value, same optimality as the
// unbounded solve, and no degradation flag.
func TestBranchBoundGenerousDeadlineUnchanged(t *testing.T) {
	rng := stats.NewRNG(11)
	for i := 0; i < 60; i++ {
		p := randomProblem(rng, 2+rng.Intn(30), 1+rng.Intn(2))
		plain, err := BranchBound(p, BBConfig{})
		if err != nil {
			t.Fatal(err)
		}
		bounded, err := BranchBound(p, BBConfig{Deadline: time.Now().Add(time.Hour)})
		if err != nil {
			t.Fatal(err)
		}
		if bounded.Degraded {
			t.Fatalf("instance %d: generous deadline degraded", i)
		}
		if bounded.Value != plain.Value || bounded.Optimal != plain.Optimal {
			t.Fatalf("instance %d: deadline changed outcome: %+v vs %+v", i, bounded, plain)
		}
		for j := range plain.X {
			if plain.X[j] != bounded.X[j] {
				t.Fatalf("instance %d: deadline changed assignment at item %d", i, j)
			}
		}
	}
}

// Package ilp provides the optimisation substrate for LPVS Phase-1
// scheduling: a dense simplex solver for linear-programming relaxations,
// an exact branch-and-bound solver for 0/1 integer programs (the role
// CPLEX/Gurobi play in the paper), and a linear-time greedy heuristic
// used both as a warm start and as an ablation baseline.
//
// All problems are stated in maximisation knapsack form:
//
//	maximise   Values . x
//	subject to Weights_j . x <= Capacity_j   for every constraint j
//	           x binary (ILP) or 0 <= x <= 1 (LP relaxation)
//
// Phase-1 of the paper's two-phase heuristic ("which devices get video
// transforming") is exactly this shape: maximising total energy saving
// under the edge server's compute and storage capacities.
package ilp

import (
	"errors"
	"fmt"
	"math"
)

// Constraint is one knapsack row: Weights . x <= Capacity.
type Constraint struct {
	Weights  []float64
	Capacity float64
}

// Problem is a 0/1 maximisation problem.
type Problem struct {
	Values      []float64
	Constraints []Constraint
}

// Validate reports whether the problem is well-formed: at least one
// item, consistent row lengths, non-negative values, weights, and
// capacities. Negative weights would break the knapsack bounds used by
// the branch-and-bound solver.
func (p *Problem) Validate() error {
	n := len(p.Values)
	if n == 0 {
		return errors.New("ilp: empty problem")
	}
	for i, v := range p.Values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("ilp: value %d is %v; must be finite and non-negative", i, v)
		}
	}
	for j, c := range p.Constraints {
		if len(c.Weights) != n {
			return fmt.Errorf("ilp: constraint %d has %d weights, want %d", j, len(c.Weights), n)
		}
		if c.Capacity < 0 || math.IsNaN(c.Capacity) {
			return fmt.Errorf("ilp: constraint %d capacity %v", j, c.Capacity)
		}
		for i, w := range c.Weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("ilp: constraint %d weight %d is %v; must be finite and non-negative", j, i, w)
			}
		}
	}
	return nil
}

// N returns the number of decision variables.
func (p *Problem) N() int { return len(p.Values) }

// Feasible reports whether a binary assignment satisfies every
// constraint.
func (p *Problem) Feasible(x []bool) bool {
	for _, c := range p.Constraints {
		sum := 0.0
		for i, on := range x {
			if on {
				sum += c.Weights[i]
			}
		}
		if sum > c.Capacity+1e-9 {
			return false
		}
	}
	return true
}

// Value returns the objective of a binary assignment.
func (p *Problem) Value(x []bool) float64 {
	sum := 0.0
	for i, on := range x {
		if on {
			sum += p.Values[i]
		}
	}
	return sum
}

// ErrUnbounded is returned by the simplex solver when the LP has no
// finite optimum.
var ErrUnbounded = errors.New("ilp: linear program is unbounded")

// ErrInfeasible is returned when no assignment satisfies the
// constraints.
var ErrInfeasible = errors.New("ilp: problem is infeasible")

// SimplexResult carries an LP optimum.
type SimplexResult struct {
	X     []float64
	Value float64
}

// Simplex maximises c.x subject to A x <= b and x >= 0 using the
// standard primal simplex method on a dense tableau with Bland's rule
// (guaranteeing termination). Problems arising from LPVS relaxations
// always have b >= 0, so a Phase-I procedure is unnecessary; a negative
// entry in b is rejected.
func Simplex(c []float64, a [][]float64, b []float64) (SimplexResult, error) {
	n := len(c)
	m := len(a)
	if n == 0 {
		return SimplexResult{}, errors.New("ilp: simplex with no variables")
	}
	if len(b) != m {
		return SimplexResult{}, fmt.Errorf("ilp: %d rows but %d right-hand sides", m, len(b))
	}
	for i, bi := range b {
		if bi < 0 {
			return SimplexResult{}, fmt.Errorf("ilp: negative right-hand side b[%d]=%v not supported", i, bi)
		}
		if len(a[i]) != n {
			return SimplexResult{}, fmt.Errorf("ilp: row %d has %d coefficients, want %d", i, len(a[i]), n)
		}
	}

	// Tableau: m rows x (n + m + 1) columns (variables, slacks, rhs),
	// plus the objective row.
	cols := n + m + 1
	tab := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, cols)
		copy(tab[i], a[i])
		tab[i][n+i] = 1
		tab[i][cols-1] = b[i]
	}
	obj := make([]float64, cols)
	for j := 0; j < n; j++ {
		obj[j] = -c[j] // maximisation: negate into the canonical row
	}
	tab[m] = obj

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	const eps = 1e-9
	for iter := 0; iter < 10000*(m+n); iter++ {
		// Bland's rule: entering variable = lowest index with a negative
		// reduced cost.
		pivotCol := -1
		for j := 0; j < cols-1; j++ {
			if tab[m][j] < -eps {
				pivotCol = j
				break
			}
		}
		if pivotCol < 0 {
			return extractSolution(tab, basis, n, cols), nil
		}
		// Ratio test, ties broken by lowest basis index (Bland).
		pivotRow := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][pivotCol] > eps {
				ratio := tab[i][cols-1] / tab[i][pivotCol]
				if ratio < bestRatio-eps ||
					(math.Abs(ratio-bestRatio) <= eps && pivotRow >= 0 && basis[i] < basis[pivotRow]) {
					bestRatio = ratio
					pivotRow = i
				}
			}
		}
		if pivotRow < 0 {
			return SimplexResult{}, ErrUnbounded
		}
		pivot(tab, pivotRow, pivotCol)
		basis[pivotRow] = pivotCol
	}
	return SimplexResult{}, errors.New("ilp: simplex iteration limit exceeded")
}

func pivot(tab [][]float64, row, col int) {
	p := tab[row][col]
	for j := range tab[row] {
		tab[row][j] /= p
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := range tab[i] {
			tab[i][j] -= f * tab[row][j]
		}
	}
}

func extractSolution(tab [][]float64, basis []int, n, cols int) SimplexResult {
	res := SimplexResult{X: make([]float64, n)}
	for i, bv := range basis {
		if bv < n {
			res.X[bv] = tab[i][cols-1]
		}
	}
	res.Value = tab[len(tab)-1][cols-1]
	return res
}

// Relax01 solves the LP relaxation of a 0/1 problem (variables bounded
// by [0, 1]) with the simplex method, returning an upper bound on the
// integer optimum. The x <= 1 bounds are materialised as explicit rows,
// so this is intended for the moderate problem sizes where exact
// branch-and-bound runs; large instances use the knapsack bounds.
func Relax01(p *Problem) (SimplexResult, error) {
	if err := p.Validate(); err != nil {
		return SimplexResult{}, err
	}
	n := p.N()
	m := len(p.Constraints)
	a := make([][]float64, 0, m+n)
	b := make([]float64, 0, m+n)
	for _, c := range p.Constraints {
		row := make([]float64, n)
		copy(row, c.Weights)
		a = append(a, row)
		b = append(b, c.Capacity)
	}
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		row[i] = 1
		a = append(a, row)
		b = append(b, 1)
	}
	return Simplex(p.Values, a, b)
}

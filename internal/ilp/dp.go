package ilp

import (
	"fmt"
	"math"
)

// DPKnapsack solves a single-constraint 0/1 knapsack exactly in
// pseudo-polynomial time O(n * buckets) by discretising the weight axis.
// It is an alternative exact engine for LPVS Phase-1 when the storage
// constraint is slack (the common case: compute binds first), where it
// is immune to the branch-and-bound worst case.
//
// Weights are scaled onto `buckets` integer units; the solution is exact
// for the rounded weights, which under-uses capacity by at most
// n * capacity/buckets. The returned Solution is always feasible for the
// *original* weights: rounding is upward, so rounded-feasible implies
// feasible.
func DPKnapsack(values, weights []float64, capacity float64, buckets int) (Solution, error) {
	n := len(values)
	if n == 0 {
		return Solution{}, fmt.Errorf("ilp: empty problem")
	}
	if len(weights) != n {
		return Solution{}, fmt.Errorf("ilp: %d weights for %d values", len(weights), n)
	}
	if capacity < 0 || math.IsNaN(capacity) {
		return Solution{}, fmt.Errorf("ilp: capacity %v", capacity)
	}
	if buckets <= 0 {
		buckets = 10_000
	}
	for i := 0; i < n; i++ {
		if values[i] < 0 || math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
			return Solution{}, fmt.Errorf("ilp: value %d is %v", i, values[i])
		}
		if weights[i] < 0 || math.IsNaN(weights[i]) || math.IsInf(weights[i], 0) {
			return Solution{}, fmt.Errorf("ilp: weight %d is %v", i, weights[i])
		}
	}

	// Scale weights to integer units, rounding *up* so that any rounded-
	// feasible selection is feasible for the true weights.
	scale := float64(buckets) / math.Max(capacity, 1e-12)
	w := make([]int, n)
	for i := range w {
		w[i] = int(math.Ceil(weights[i] * scale))
	}
	capUnits := buckets

	// best[c] = max value using capacity c; choice tracking via bitrows.
	best := make([]float64, capUnits+1)
	take := make([][]bool, n)
	for i := 0; i < n; i++ {
		take[i] = make([]bool, capUnits+1)
		if w[i] > capUnits {
			continue // never fits
		}
		for c := capUnits; c >= w[i]; c-- {
			if cand := best[c-w[i]] + values[i]; cand > best[c] {
				best[c] = cand
				take[i][c] = true
			}
		}
	}

	// Recover the selection.
	x := make([]bool, n)
	c := capUnits
	for i := n - 1; i >= 0; i-- {
		if take[i][c] {
			x[i] = true
			c -= w[i]
		}
	}
	return Solution{X: x, Value: best[capUnits], Optimal: true}, nil
}

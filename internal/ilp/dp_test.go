package ilp

import (
	"math"
	"testing"

	"lpvs/internal/stats"
)

func TestDPKnapsackTextbook(t *testing.T) {
	// Classic: values 60/100/120, weights 10/20/30, cap 50 -> 220.
	sol, err := DPKnapsack(
		[]float64{60, 100, 120},
		[]float64{10, 20, 30},
		50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Value-220) > 1e-9 {
		t.Fatalf("value = %v, want 220", sol.Value)
	}
	if sol.X[0] || !sol.X[1] || !sol.X[2] {
		t.Fatalf("selection = %v, want items 1 and 2", sol.X)
	}
	if !sol.Optimal {
		t.Fatal("DP must claim optimality")
	}
}

func TestDPKnapsackMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(31)
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng, 5+rng.Intn(10), 1)
		c := p.Constraints[0]
		sol, err := DPKnapsack(p.Values, c.Weights, c.Capacity, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Feasible(sol.X) {
			t.Fatalf("trial %d: DP selection infeasible", trial)
		}
		exact, err := BruteForce(p)
		if err != nil {
			t.Fatal(err)
		}
		// Discretisation can lose a sliver of value, never gain.
		if sol.Value > exact.Value+1e-9 {
			t.Fatalf("trial %d: DP %v beats optimum %v", trial, sol.Value, exact.Value)
		}
		if sol.Value < exact.Value*0.98-1e-9 {
			t.Fatalf("trial %d: DP %v more than 2%% below optimum %v", trial, sol.Value, exact.Value)
		}
	}
}

func TestDPKnapsackZeroCapacity(t *testing.T) {
	sol, err := DPKnapsack([]float64{5}, []float64{1}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 0 || sol.X[0] {
		t.Fatalf("zero capacity selected something: %+v", sol)
	}
}

func TestDPKnapsackZeroWeightItems(t *testing.T) {
	sol, err := DPKnapsack([]float64{5, 3}, []float64{0, 10}, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.X[0] {
		t.Fatal("free item not taken")
	}
	if sol.X[1] {
		t.Fatal("oversized item taken")
	}
}

func TestDPKnapsackValidation(t *testing.T) {
	if _, err := DPKnapsack(nil, nil, 1, 10); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := DPKnapsack([]float64{1}, []float64{1, 2}, 1, 10); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := DPKnapsack([]float64{-1}, []float64{1}, 1, 10); err == nil {
		t.Fatal("negative value accepted")
	}
	if _, err := DPKnapsack([]float64{1}, []float64{-1}, 1, 10); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := DPKnapsack([]float64{1}, []float64{1}, -1, 10); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestDPKnapsackLarge(t *testing.T) {
	rng := stats.NewRNG(77)
	p := randomProblem(rng, 500, 1)
	c := p.Constraints[0]
	sol, err := DPKnapsack(p.Values, c.Weights, c.Capacity, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(sol.X) {
		t.Fatal("infeasible")
	}
	g := Greedy(p)
	if sol.Value < g.Value*0.99 {
		t.Fatalf("DP (%v) clearly below greedy (%v)", sol.Value, g.Value)
	}
}

package ilp

import (
	"math"
	"testing"
	"testing/quick"

	"lpvs/internal/stats"
)

func randomProblem(rng *stats.RNG, n, m int) *Problem {
	p := &Problem{Values: make([]float64, n)}
	for i := range p.Values {
		p.Values[i] = rng.Uniform(0.1, 10)
	}
	for j := 0; j < m; j++ {
		c := Constraint{Weights: make([]float64, n)}
		total := 0.0
		for i := range c.Weights {
			c.Weights[i] = rng.Uniform(0.1, 5)
			total += c.Weights[i]
		}
		c.Capacity = total * rng.Uniform(0.2, 0.7)
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

func TestValidate(t *testing.T) {
	good := &Problem{
		Values:      []float64{1, 2},
		Constraints: []Constraint{{Weights: []float64{1, 1}, Capacity: 1}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Problem{
		{},
		{Values: []float64{-1}},
		{Values: []float64{math.NaN()}},
		{Values: []float64{1}, Constraints: []Constraint{{Weights: []float64{1, 2}, Capacity: 1}}},
		{Values: []float64{1}, Constraints: []Constraint{{Weights: []float64{-1}, Capacity: 1}}},
		{Values: []float64{1}, Constraints: []Constraint{{Weights: []float64{1}, Capacity: -1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestSimplexTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 -> (2, 6), 36.
	res, err := Simplex(
		[]float64{3, 5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-36) > 1e-9 {
		t.Fatalf("value = %v, want 36", res.Value)
	}
	if math.Abs(res.X[0]-2) > 1e-9 || math.Abs(res.X[1]-6) > 1e-9 {
		t.Fatalf("x = %v, want (2, 6)", res.X)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// max x with no binding constraint on x.
	_, err := Simplex([]float64{1, 0}, [][]float64{{0, 1}}, []float64{5})
	if err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Degenerate vertex: Bland's rule must still terminate.
	res, err := Simplex(
		[]float64{1, 1},
		[][]float64{{1, 0}, {1, 0}, {0, 1}},
		[]float64{1, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-2) > 1e-9 {
		t.Fatalf("value = %v, want 2", res.Value)
	}
}

func TestSimplexInputErrors(t *testing.T) {
	if _, err := Simplex(nil, nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Simplex([]float64{1}, [][]float64{{1}}, []float64{-1}); err == nil {
		t.Fatal("negative rhs accepted")
	}
	if _, err := Simplex([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("ragged row accepted")
	}
	if _, err := Simplex([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("rhs length mismatch accepted")
	}
}

func TestRelax01UpperBoundsInteger(t *testing.T) {
	rng := stats.NewRNG(3)
	for trial := 0; trial < 25; trial++ {
		p := randomProblem(rng, 10, 2)
		lp, err := Relax01(p)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := BruteForce(p)
		if err != nil {
			t.Fatal(err)
		}
		if lp.Value < exact.Value-1e-6 {
			t.Fatalf("trial %d: LP bound %v below integer optimum %v", trial, lp.Value, exact.Value)
		}
		for i, x := range lp.X {
			if x < -1e-9 || x > 1+1e-9 {
				t.Fatalf("trial %d: relaxed x[%d]=%v outside [0,1]", trial, i, x)
			}
		}
	}
}

func TestBranchBoundMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(12)
		m := 1 + rng.Intn(3)
		p := randomProblem(rng, n, m)
		got, err := BranchBound(p, BBConfig{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForce(p)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Optimal {
			t.Fatalf("trial %d: not proven optimal", trial)
		}
		if math.Abs(got.Value-want.Value) > 1e-6 {
			t.Fatalf("trial %d: BB value %v, brute force %v", trial, got.Value, want.Value)
		}
		if !p.Feasible(got.X) {
			t.Fatalf("trial %d: infeasible BB solution", trial)
		}
		if math.Abs(p.Value(got.X)-got.Value) > 1e-9 {
			t.Fatalf("trial %d: reported value inconsistent with assignment", trial)
		}
	}
}

func TestBranchBoundZeroCapacity(t *testing.T) {
	p := &Problem{
		Values:      []float64{5, 3},
		Constraints: []Constraint{{Weights: []float64{1, 1}, Capacity: 0}},
	}
	sol, err := BranchBound(p, BBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 0 || sol.X[0] || sol.X[1] {
		t.Fatalf("zero capacity must select nothing: %+v", sol)
	}
}

func TestBranchBoundFreeItems(t *testing.T) {
	// Items with zero weight are always selected.
	p := &Problem{
		Values:      []float64{5, 3, 2},
		Constraints: []Constraint{{Weights: []float64{0, 4, 4}, Capacity: 4}},
	}
	sol, err := BranchBound(p, BBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.X[0] {
		t.Fatal("free item not taken")
	}
	if math.Abs(sol.Value-8) > 1e-9 { // 5 free + best of {3, 2}
		t.Fatalf("value = %v, want 8", sol.Value)
	}
}

func TestBranchBoundNodeLimit(t *testing.T) {
	rng := stats.NewRNG(11)
	p := randomProblem(rng, 60, 2)
	sol, err := BranchBound(p, BBConfig{MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Optimal {
		t.Fatal("claimed optimality despite a 10-node limit")
	}
	if !p.Feasible(sol.X) {
		t.Fatal("limited search returned infeasible incumbent")
	}
}

func TestGreedyFeasibleAndDecent(t *testing.T) {
	rng := stats.NewRNG(13)
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng, 14, 2)
		g := Greedy(p)
		if !p.Feasible(g.X) {
			t.Fatalf("trial %d: greedy infeasible", trial)
		}
		exact, err := BruteForce(p)
		if err != nil {
			t.Fatal(err)
		}
		if g.Value > exact.Value+1e-9 {
			t.Fatalf("trial %d: greedy %v beats optimum %v", trial, g.Value, exact.Value)
		}
		if exact.Value > 0 && g.Value < 0.5*exact.Value {
			t.Fatalf("trial %d: greedy %v below half of optimum %v", trial, g.Value, exact.Value)
		}
	}
}

func TestBruteForceRejectsLarge(t *testing.T) {
	p := randomProblem(stats.NewRNG(1), 30, 1)
	if _, err := BruteForce(p); err == nil {
		t.Fatal("30-variable brute force accepted")
	}
}

func TestBranchBoundLargeInstanceRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := stats.NewRNG(17)
	p := randomProblem(rng, 300, 2)
	sol, err := BranchBound(p, BBConfig{MaxNodes: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(sol.X) {
		t.Fatal("infeasible")
	}
	g := Greedy(p)
	if sol.Value < g.Value-1e-9 {
		t.Fatalf("BB (%v) worse than its own warm start (%v)", sol.Value, g.Value)
	}
}

func TestBBNeverWorseThanGreedyProperty(t *testing.T) {
	f := func(seed int64, n, m uint8) bool {
		rng := stats.NewRNG(seed)
		p := randomProblem(rng, int(n%20)+1, int(m%3)+1)
		bb, err := BranchBound(p, BBConfig{MaxNodes: 5000})
		if err != nil {
			return false
		}
		g := Greedy(p)
		return bb.Value >= g.Value-1e-9 && p.Feasible(bb.X) && p.Feasible(g.X)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFeasibleAndValueHelpers(t *testing.T) {
	p := &Problem{
		Values:      []float64{1, 2, 3},
		Constraints: []Constraint{{Weights: []float64{1, 1, 1}, Capacity: 2}},
	}
	x := []bool{true, false, true}
	if !p.Feasible(x) {
		t.Fatal("feasible rejected")
	}
	if p.Value(x) != 4 {
		t.Fatalf("value = %v, want 4", p.Value(x))
	}
	if p.Feasible([]bool{true, true, true}) {
		t.Fatal("overweight accepted")
	}
	if p.N() != 3 {
		t.Fatal("N")
	}
}

package ilp

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Solution is the result of a 0/1 solver.
type Solution struct {
	X     []bool
	Value float64
	// Optimal reports whether the solver proved optimality (branch-and-
	// bound without hitting its node limit).
	Optimal bool
	// Nodes counts branch-and-bound nodes explored (0 for greedy). When a
	// warm-started search is discarded and re-run cold, Nodes is the total
	// across both searches — the true cost of the call.
	Nodes int
	// WarmUsed reports that a WarmStart seed survived the acceptance
	// rules and the returned solution came from the warm-seeded search.
	WarmUsed bool
	// Degraded reports that the Deadline expired before the search could
	// finish and the always-feasible greedy solution was returned instead
	// of the (timing-dependent, hence non-deterministic) search incumbent.
	// A degraded solution is a pure function of the problem: re-running
	// Greedy on the same problem reproduces it bit for bit.
	Degraded bool
}

// BBConfig tunes the branch-and-bound solver.
type BBConfig struct {
	// MaxNodes caps the search; when exceeded the best incumbent is
	// returned with Optimal=false. Zero means the default.
	MaxNodes int
	// WarmStart optionally seeds the search with a known assignment —
	// typically the previous scheduling slot's solution projected onto
	// the current item set. The seed is adopted as the initial incumbent
	// only when it is feasible and its value strictly exceeds the greedy
	// incumbent's, and the warm-seeded result is kept only when the
	// search strictly improved beyond the seed (by more than the bound
	// tolerance) without hitting the node limit; in every other case the
	// solver falls back to a cold-start search, so warm and cold callers
	// receive identical solutions (see DESIGN.md §11 for the soundness
	// argument). Length must equal the problem size or the seed is
	// ignored.
	WarmStart []bool
	// Deadline, when non-zero, bounds the search wall clock (the anytime
	// mode): if it expires mid-search the solver abandons the tree and
	// returns the deterministic greedy solution with Solution.Degraded
	// set, never the partial incumbent — a timing-dependent incumbent
	// would make equal problems yield unequal solutions, breaking the
	// audit-replay contract. A search that completes before the deadline
	// returns exactly what an unbounded search would.
	Deadline time.Time
}

// DefaultMaxNodes bounds the search effort; random LPVS instances
// typically close the gap within a few thousand nodes.
const DefaultMaxNodes = 200_000

// boundTol is the bound-pruning slack: a subtree is abandoned when its
// upper bound does not beat the incumbent by more than this.
const boundTol = 1e-9

// deadlineCheckMask throttles the wall-clock polling of the anytime
// mode: an armed deadline is checked once every deadlineCheckMask+1
// nodes, so the per-node overhead is a mask-and-branch.
const deadlineCheckMask = 0x3FF

// bbScratch is the per-call search state of BranchBound and Greedy,
// recycled through a sync.Pool so hot schedulers (one Phase-1 solve per
// virtual cluster per slot) do not re-allocate it every call. Only
// state that never escapes into a Solution lives here; incumbent X
// vectors are still allocated per call.
type bbScratch struct {
	order     []int
	pos       []int
	density   []float64
	consOrder [][]int
	remaining []float64
	suffix    []float64
	cur       []bool
	greedyX   []bool
}

var bbScratchPool = sync.Pool{New: func() any { return new(bbScratch) }}

// grow resizes every scratch slice for an n-item, m-constraint problem.
func (sc *bbScratch) grow(n, m int) {
	if cap(sc.order) < n {
		sc.order = make([]int, n)
		sc.pos = make([]int, n)
		sc.density = make([]float64, n)
		sc.cur = make([]bool, n)
		sc.greedyX = make([]bool, n)
		sc.suffix = make([]float64, n+1)
	}
	sc.order = sc.order[:n]
	sc.pos = sc.pos[:n]
	sc.density = sc.density[:n]
	sc.cur = sc.cur[:n]
	sc.greedyX = sc.greedyX[:n]
	sc.suffix = sc.suffix[:n+1]
	if cap(sc.remaining) < m {
		sc.remaining = make([]float64, m)
	}
	sc.remaining = sc.remaining[:m]
	for cap(sc.consOrder) < m {
		sc.consOrder = append(sc.consOrder[:cap(sc.consOrder)], nil)
	}
	sc.consOrder = sc.consOrder[:m]
	for j := range sc.consOrder {
		if cap(sc.consOrder[j]) < n {
			sc.consOrder[j] = make([]int, n)
		}
		sc.consOrder[j] = sc.consOrder[j][:n]
	}
}

// BranchBound solves the 0/1 problem exactly (up to the node limit) by
// depth-first branch and bound. Items are explored in value-density
// order; the upper bound at each node is the tightest of the per-
// constraint fractional (Dantzig) knapsack bounds, each of which is a
// valid relaxation of the multi-constraint problem. The greedy solution
// primes the incumbent so pruning is effective immediately; a caller-
// supplied WarmStart seed can prime it higher (see BBConfig).
//
// BranchBound is reentrant: it only reads the Problem, and all search
// state is per call (recycled through an internal sync.Pool, never
// shared between live calls), so concurrent solves — including of the
// same Problem value — are safe. The scheduler's worker pool relies on
// this; reentrancy_test.go pins it under the race detector.
func BranchBound(p *Problem, cfg BBConfig) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	maxNodes := cfg.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	n := p.N()

	sc := bbScratchPool.Get().(*bbScratch)
	defer bbScratchPool.Put(sc)
	sc.grow(n, len(p.Constraints))

	// Density order: value per unit of normalised weight across
	// constraints. Items that fit nowhere sort last.
	order := sc.order
	densityOrderInto(p, order, sc.density)
	pos := sc.pos // pos[item] = its index in the branching order
	for k, item := range order {
		pos[item] = k
	}

	// Per-constraint orders sorted by value/weight once, so each bound
	// evaluation is a linear scan instead of a sort.
	consOrder := sc.consOrder
	for j, c := range p.Constraints {
		idx := consOrder[j]
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ia, ib := idx[a], idx[b]
			wa, wb := c.Weights[ia], c.Weights[ib]
			// Zero-weight items are free under this constraint: first.
			if wa == 0 || wb == 0 {
				return wa == 0 && wb != 0
			}
			return p.Values[ia]*wb > p.Values[ib]*wa
		})
	}

	// Greedy incumbent, computed over the shared density order with the
	// exact admission rule of Greedy().
	greedyX := sc.greedyX
	greedyValue := greedyInto(p, order, sc.remaining, greedyX)

	remaining := sc.remaining
	cur := sc.cur
	bestX := make([]bool, n)
	st := &bbState{p: p}

	// suffix[k] = total value of items order[k:] — a cheap extra bound
	// component.
	suffix := sc.suffix
	suffix[n] = 0
	for k := n - 1; k >= 0; k-- {
		suffix[k] = suffix[k+1] + p.Values[order[k]]
	}

	hasDeadline := !cfg.Deadline.IsZero()

	// search runs one full DFS from the given incumbent and reports the
	// final incumbent value, the node count, and whether the node limit
	// was hit or the deadline expired. bestX holds the final incumbent
	// assignment (meaningless when expired: the caller discards it for
	// the greedy solution).
	search := func(seedX []bool, seedValue float64) (best float64, nodes int, hitLimit, expired bool) {
		copy(bestX, seedX)
		best = seedValue
		for j, c := range p.Constraints {
			remaining[j] = c.Capacity
		}
		for i := range cur {
			cur[i] = false
		}
		var dfs func(k int, value float64)
		dfs = func(k int, value float64) {
			if hitLimit || expired {
				return
			}
			nodes++
			if nodes > maxNodes {
				hitLimit = true
				return
			}
			if hasDeadline && nodes&deadlineCheckMask == 0 && time.Now().After(cfg.Deadline) {
				expired = true
				return
			}
			if value > best {
				best = value
				copy(bestX, cur)
			}
			if k == n {
				return
			}
			// Bound: fractional knapsack on each constraint over the
			// remaining items; the integer optimum of the subtree cannot
			// exceed any of them.
			ub := value + suffix[k]
			for j := range p.Constraints {
				b := value + st.fractionalBound(consOrder[j], pos, k, j, remaining[j])
				if b < ub {
					ub = b
				}
			}
			if ub <= best+boundTol {
				return
			}

			item := order[k]
			// Branch 1: take the item if it fits.
			fits := true
			for j, c := range p.Constraints {
				if c.Weights[item] > remaining[j]+boundTol {
					fits = false
					break
				}
			}
			if fits {
				for j, c := range p.Constraints {
					remaining[j] -= c.Weights[item]
				}
				cur[item] = true
				dfs(k+1, value+p.Values[item])
				cur[item] = false
				for j, c := range p.Constraints {
					remaining[j] += c.Weights[item]
				}
			}
			// Branch 2: skip the item.
			dfs(k+1, value)
		}
		dfs(0, 0)
		return best, nodes, hitLimit, expired
	}

	// degrade abandons the search outcome for the deterministic greedy
	// solution — the anytime fallback. bestX is recycled as the result
	// buffer (it never escaped: every return below copies or overwrites).
	degrade := func(totalNodes int) (Solution, error) {
		copy(bestX, greedyX)
		return Solution{X: bestX, Value: greedyValue, Optimal: false, Nodes: totalNodes, Degraded: true}, nil
	}

	totalNodes := 0
	if hasDeadline && !time.Now().Before(cfg.Deadline) {
		return degrade(0)
	}
	if warmValue, ok := warmSeedValue(p, cfg.WarmStart, order, greedyValue); ok {
		best, nodes, hit, expired := search(cfg.WarmStart, warmValue)
		totalNodes += nodes
		if expired {
			return degrade(totalNodes)
		}
		// The warm result is kept only when the search strictly improved
		// beyond the seed without exhausting the node budget. A seed that
		// survives as the incumbent may be one of several assignments
		// tying the optimum, and the cold search's deterministic
		// tie-break must rule; a truncated search must return exactly
		// what the cold truncated search would. Both cases fall through
		// to the cold run below.
		if !hit && best > warmValue+boundTol {
			return Solution{X: bestX, Value: best, Optimal: true, Nodes: totalNodes, WarmUsed: true}, nil
		}
	}
	best, nodes, hit, expired := search(greedyX, greedyValue)
	totalNodes += nodes
	if expired {
		return degrade(totalNodes)
	}
	return Solution{X: bestX, Value: best, Optimal: !hit, Nodes: totalNodes}, nil
}

// warmSeedValue vets a warm-start seed: it must match the problem size,
// fit every constraint (with the search's own tolerance), and beat the
// greedy incumbent strictly. The returned value is accumulated over the
// branching order — the exact float sequence the DFS would produce on
// the seed's path — so incumbent comparisons inside the search are
// bit-consistent.
func warmSeedValue(p *Problem, seed []bool, order []int, greedyValue float64) (float64, bool) {
	if len(seed) != p.N() {
		return 0, false
	}
	for _, c := range p.Constraints {
		used := 0.0
		for i, on := range seed {
			if on {
				used += c.Weights[i]
			}
		}
		if used > c.Capacity+boundTol {
			return 0, false
		}
	}
	value := 0.0
	for _, item := range order {
		if seed[item] {
			value += p.Values[item]
		}
	}
	if value <= greedyValue {
		return 0, false
	}
	return value, true
}

// fractionalBound computes the Dantzig bound for constraint j over the
// still-undecided items (branching position >= k): fill greedily in the
// constraint's pre-sorted density order, taking the last item
// fractionally. Items with zero weight in the constraint are free under
// it and contribute fully. The result is the LP optimum of the single-
// constraint relaxation, hence a valid upper bound for the subtree.
func (bb *bbState) fractionalBound(consOrder []int, pos []int, k, j int, capacity float64) float64 {
	c := bb.p.Constraints[j]
	bound := 0.0
	remaining := capacity
	for _, idx := range consOrder {
		if pos[idx] < k {
			continue // already decided on this branch
		}
		w := c.Weights[idx]
		if w == 0 {
			bound += bb.p.Values[idx]
			continue
		}
		if w <= remaining {
			bound += bb.p.Values[idx]
			remaining -= w
		} else {
			bound += bb.p.Values[idx] * remaining / w
			break
		}
	}
	return bound
}

// bbState carries the problem through bound evaluations.
type bbState struct{ p *Problem }

// densityOrderInto sorts item indices by decreasing value density into
// order, where an item's weight is its maximum capacity-normalised
// weight across constraints (the binding dimension). density is scratch
// of the same length.
func densityOrderInto(p *Problem, order []int, density []float64) {
	n := p.N()
	for i := 0; i < n; i++ {
		w := 0.0
		for _, c := range p.Constraints {
			if c.Capacity > 0 {
				nw := c.Weights[i] / c.Capacity
				if nw > w {
					w = nw
				}
			} else if c.Weights[i] > 0 {
				w = math.Inf(1)
			}
		}
		if w <= 0 {
			density[i] = math.Inf(1) // free item: always first
		} else {
			density[i] = p.Values[i] / w
		}
	}
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return density[order[a]] > density[order[b]] })
}

// densityOrder is the allocating form of densityOrderInto.
func densityOrder(p *Problem) []int {
	n := p.N()
	order := make([]int, n)
	densityOrderInto(p, order, make([]float64, n))
	return order
}

// greedyInto runs the greedy admission scan over a precomputed density
// order: take each item that fits. remaining is constraint scratch; x
// receives the assignment. Returns the accumulated value. This is the
// exact algorithm of Greedy, shared so BranchBound's incumbent is
// bit-identical to a standalone Greedy call.
func greedyInto(p *Problem, order []int, remaining []float64, x []bool) float64 {
	for j, c := range p.Constraints {
		remaining[j] = c.Capacity
	}
	for i := range x {
		x[i] = false
	}
	value := 0.0
	for _, i := range order {
		fits := true
		for j, c := range p.Constraints {
			if c.Weights[i] > remaining[j]+1e-12 {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		for j, c := range p.Constraints {
			remaining[j] -= c.Weights[i]
		}
		x[i] = true
		value += p.Values[i]
	}
	return value
}

// Greedy builds a feasible solution in O(n log n): scan items in density
// order, taking each one that fits. It is the paper-agnostic baseline
// for the ablation study and the warm start for branch and bound.
// Like BranchBound it is reentrant: read-only on the Problem, all
// mutable state per call.
func Greedy(p *Problem) Solution {
	n := p.N()
	sc := bbScratchPool.Get().(*bbScratch)
	defer bbScratchPool.Put(sc)
	sc.grow(n, len(p.Constraints))
	densityOrderInto(p, sc.order, sc.density)
	x := make([]bool, n)
	value := greedyInto(p, sc.order, sc.remaining, x)
	return Solution{X: x, Value: value, Optimal: false}
}

// BruteForce enumerates all assignments; usable only for tests with
// n <= 24.
func BruteForce(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := p.N()
	if n > 24 {
		return Solution{}, errors24
	}
	bestX := make([]bool, n)
	best := 0.0
	x := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			x[i] = mask&(1<<i) != 0
		}
		if !p.Feasible(x) {
			continue
		}
		if v := p.Value(x); v > best {
			best = v
			copy(bestX, x)
		}
	}
	return Solution{X: bestX, Value: best, Optimal: true}, nil
}

var errors24 = errBrute{}

type errBrute struct{}

func (errBrute) Error() string { return "ilp: brute force limited to 24 variables" }

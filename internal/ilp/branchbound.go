package ilp

import (
	"math"
	"sort"
)

// Solution is the result of a 0/1 solver.
type Solution struct {
	X     []bool
	Value float64
	// Optimal reports whether the solver proved optimality (branch-and-
	// bound without hitting its node limit).
	Optimal bool
	// Nodes counts branch-and-bound nodes explored (0 for greedy).
	Nodes int
}

// BBConfig tunes the branch-and-bound solver.
type BBConfig struct {
	// MaxNodes caps the search; when exceeded the best incumbent is
	// returned with Optimal=false. Zero means the default.
	MaxNodes int
}

// DefaultMaxNodes bounds the search effort; random LPVS instances
// typically close the gap within a few thousand nodes.
const DefaultMaxNodes = 200_000

// BranchBound solves the 0/1 problem exactly (up to the node limit) by
// depth-first branch and bound. Items are explored in value-density
// order; the upper bound at each node is the tightest of the per-
// constraint fractional (Dantzig) knapsack bounds, each of which is a
// valid relaxation of the multi-constraint problem. The greedy solution
// primes the incumbent so pruning is effective immediately.
//
// BranchBound is reentrant: it only reads the Problem and allocates all
// search state (orders, bounds, incumbent) per call, so concurrent
// solves — including of the same Problem value — are safe. The
// scheduler's worker pool relies on this; reentrancy_test.go pins it
// under the race detector.
func BranchBound(p *Problem, cfg BBConfig) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	maxNodes := cfg.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	n := p.N()

	// Density order: value per unit of normalised weight across
	// constraints. Items that fit nowhere sort last.
	order := densityOrder(p)
	pos := make([]int, n) // pos[item] = its index in the branching order
	for k, item := range order {
		pos[item] = k
	}

	// Per-constraint orders sorted by value/weight once, so each bound
	// evaluation is a linear scan instead of a sort.
	consOrder := make([][]int, len(p.Constraints))
	for j, c := range p.Constraints {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ia, ib := idx[a], idx[b]
			wa, wb := c.Weights[ia], c.Weights[ib]
			// Zero-weight items are free under this constraint: first.
			if wa == 0 || wb == 0 {
				return wa == 0 && wb != 0
			}
			return p.Values[ia]*wb > p.Values[ib]*wa
		})
		consOrder[j] = idx
	}

	// Incumbent from greedy.
	incumbent := Greedy(p)
	best := incumbent.Value
	bestX := make([]bool, n)
	copy(bestX, incumbent.X)

	remaining := make([]float64, len(p.Constraints))
	for j, c := range p.Constraints {
		remaining[j] = c.Capacity
	}

	cur := make([]bool, n)
	nodes := 0
	hitLimit := false
	st := &bbState{p: p}

	// suffixValue[k] = total value of items order[k:] — a cheap extra
	// bound component.
	suffixValue := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		suffixValue[k] = suffixValue[k+1] + p.Values[order[k]]
	}

	var dfs func(k int, value float64)
	dfs = func(k int, value float64) {
		if hitLimit {
			return
		}
		nodes++
		if nodes > maxNodes {
			hitLimit = true
			return
		}
		if value > best {
			best = value
			copy(bestX, cur)
		}
		if k == n {
			return
		}
		// Bound: fractional knapsack on each constraint over the
		// remaining items; the integer optimum of the subtree cannot
		// exceed any of them.
		ub := value + suffixValue[k]
		for j := range p.Constraints {
			b := value + st.fractionalBound(consOrder[j], pos, k, j, remaining[j])
			if b < ub {
				ub = b
			}
		}
		if ub <= best+1e-9 {
			return
		}

		item := order[k]
		// Branch 1: take the item if it fits.
		fits := true
		for j, c := range p.Constraints {
			if c.Weights[item] > remaining[j]+1e-9 {
				fits = false
				break
			}
		}
		if fits {
			for j, c := range p.Constraints {
				remaining[j] -= c.Weights[item]
			}
			cur[item] = true
			dfs(k+1, value+p.Values[item])
			cur[item] = false
			for j, c := range p.Constraints {
				remaining[j] += c.Weights[item]
			}
		}
		// Branch 2: skip the item.
		dfs(k+1, value)
	}
	dfs(0, 0)

	return Solution{X: bestX, Value: best, Optimal: !hitLimit, Nodes: nodes}, nil
}

// fractionalBound computes the Dantzig bound for constraint j over the
// still-undecided items (branching position >= k): fill greedily in the
// constraint's pre-sorted density order, taking the last item
// fractionally. Items with zero weight in the constraint are free under
// it and contribute fully. The result is the LP optimum of the single-
// constraint relaxation, hence a valid upper bound for the subtree.
func (bb *bbState) fractionalBound(consOrder []int, pos []int, k, j int, capacity float64) float64 {
	c := bb.p.Constraints[j]
	bound := 0.0
	remaining := capacity
	for _, idx := range consOrder {
		if pos[idx] < k {
			continue // already decided on this branch
		}
		w := c.Weights[idx]
		if w == 0 {
			bound += bb.p.Values[idx]
			continue
		}
		if w <= remaining {
			bound += bb.p.Values[idx]
			remaining -= w
		} else {
			bound += bb.p.Values[idx] * remaining / w
			break
		}
	}
	return bound
}

// bbState carries the problem through bound evaluations.
type bbState struct{ p *Problem }

// densityOrder sorts item indices by decreasing value density, where an
// item's weight is its maximum capacity-normalised weight across
// constraints (the binding dimension).
func densityOrder(p *Problem) []int {
	n := p.N()
	density := make([]float64, n)
	for i := 0; i < n; i++ {
		w := 0.0
		for _, c := range p.Constraints {
			if c.Capacity > 0 {
				nw := c.Weights[i] / c.Capacity
				if nw > w {
					w = nw
				}
			} else if c.Weights[i] > 0 {
				w = math.Inf(1)
			}
		}
		if w <= 0 {
			density[i] = math.Inf(1) // free item: always first
		} else {
			density[i] = p.Values[i] / w
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return density[order[a]] > density[order[b]] })
	return order
}

// Greedy builds a feasible solution in O(n log n): scan items in density
// order, taking each one that fits. It is the paper-agnostic baseline
// for the ablation study and the warm start for branch and bound.
// Like BranchBound it is reentrant: read-only on the Problem, all state
// per call.
func Greedy(p *Problem) Solution {
	n := p.N()
	x := make([]bool, n)
	remaining := make([]float64, len(p.Constraints))
	for j, c := range p.Constraints {
		remaining[j] = c.Capacity
	}
	value := 0.0
	for _, i := range densityOrder(p) {
		fits := true
		for j, c := range p.Constraints {
			if c.Weights[i] > remaining[j]+1e-12 {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		for j, c := range p.Constraints {
			remaining[j] -= c.Weights[i]
		}
		x[i] = true
		value += p.Values[i]
	}
	return Solution{X: x, Value: value, Optimal: false}
}

// BruteForce enumerates all assignments; usable only for tests with
// n <= 24.
func BruteForce(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := p.N()
	if n > 24 {
		return Solution{}, errors24
	}
	bestX := make([]bool, n)
	best := 0.0
	x := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			x[i] = mask&(1<<i) != 0
		}
		if !p.Feasible(x) {
			continue
		}
		if v := p.Value(x); v > best {
			best = v
			copy(bestX, x)
		}
	}
	return Solution{X: bestX, Value: best, Optimal: true}, nil
}

var errors24 = errBrute{}

type errBrute struct{}

func (errBrute) Error() string { return "ilp: brute force limited to 24 variables" }

package ilp

import (
	"math"
	"sync"
	"testing"
)

// TestSolversReentrant pins the reentrancy contract the scheduler's
// worker pool depends on: many goroutines solving the *same* Problem
// value concurrently must race-cleanly produce identical results. Run
// under -race (make check does) this fails on any shared mutable state
// sneaking into the solvers.
func TestSolversReentrant(t *testing.T) {
	p := &Problem{
		Values: []float64{9, 7, 6, 5, 4, 3, 2.5, 2, 1.5, 1, 0.5, 0.25},
		Constraints: []Constraint{
			{Weights: []float64{3, 2, 4, 1, 3, 2, 1, 2, 1, 3, 1, 2}, Capacity: 9},
			{Weights: []float64{1, 4, 2, 3, 1, 2, 3, 1, 2, 1, 1, 1}, Capacity: 8},
		},
	}
	ref, err := BranchBound(p, BBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	refGreedy := Greedy(p)

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				sol, err := BranchBound(p, BBConfig{})
				if err != nil {
					errs[g] = err
					return
				}
				if math.Abs(sol.Value-ref.Value) > 1e-12 || !sol.Optimal {
					t.Errorf("goroutine %d: value %v optimal=%t, want %v optimal=true",
						g, sol.Value, sol.Optimal, ref.Value)
					return
				}
				gr := Greedy(p)
				if math.Abs(gr.Value-refGreedy.Value) > 1e-12 {
					t.Errorf("goroutine %d: greedy value %v, want %v", g, gr.Value, refGreedy.Value)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

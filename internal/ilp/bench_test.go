package ilp

import (
	"fmt"
	"testing"

	"lpvs/internal/stats"
)

func benchProblem(n int) *Problem {
	return randomProblem(stats.NewRNG(42), n, 2)
}

func BenchmarkBranchBound(b *testing.B) {
	for _, n := range []int{20, 50, 100, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := benchProblem(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := BranchBound(p, BBConfig{MaxNodes: 50_000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGreedy(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := benchProblem(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Greedy(p)
			}
		})
	}
}

func BenchmarkSimplexRelaxation(b *testing.B) {
	for _, n := range []int{10, 30, 60} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := benchProblem(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Relax01(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

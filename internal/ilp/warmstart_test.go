package ilp

import (
	"testing"

	"lpvs/internal/stats"
)

// solutionsEqual compares two solutions byte-for-byte on the
// decision-relevant fields (X and Value); Nodes and WarmUsed are
// reporting-only.
func solutionsEqual(a, b Solution) bool {
	if a.Value != b.Value || a.Optimal != b.Optimal || len(a.X) != len(b.X) {
		return false
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			return false
		}
	}
	return true
}

// TestWarmStartEquivalence is the core incremental-scheduling soundness
// check at the solver level: for random instances, seeding the search
// with any assignment — including the instance's own optimum, a
// perturbed optimum, and garbage — must produce exactly the cold-start
// solution.
func TestWarmStartEquivalence(t *testing.T) {
	rng := stats.NewRNG(91)
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng, 4+trial%12, 1+trial%3)
		cold, err := BranchBound(p, BBConfig{})
		if err != nil {
			t.Fatal(err)
		}
		seeds := [][]bool{
			append([]bool(nil), cold.X...), // the optimum itself
			make([]bool, p.N()),            // empty assignment
			nil,                            // no seed
			make([]bool, p.N()+1),          // wrong length: ignored
		}
		// Perturbed optimum: drop one taken item.
		pert := append([]bool(nil), cold.X...)
		for i, on := range pert {
			if on {
				pert[i] = false
				break
			}
		}
		seeds = append(seeds, pert)
		// All-taken (almost surely infeasible): must be rejected.
		all := make([]bool, p.N())
		for i := range all {
			all[i] = true
		}
		seeds = append(seeds, all)
		for si, seed := range seeds {
			warm, err := BranchBound(p, BBConfig{WarmStart: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !solutionsEqual(cold, warm) {
				t.Fatalf("trial %d seed %d: warm diverged: cold=%+v warm=%+v", trial, si, cold, warm)
			}
		}
	}
}

// TestWarmStartNodeLimitFallback pins the fallback rule: when the
// node-limited warm search cannot prove improvement, the solver must
// re-run cold and return exactly what an unseeded call with the same
// limit returns.
func TestWarmStartNodeLimitFallback(t *testing.T) {
	rng := stats.NewRNG(17)
	p := randomProblem(rng, 18, 2)
	cold, err := BranchBound(p, BBConfig{MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Optimal {
		t.Fatal("expected node-limited search to be non-optimal")
	}
	opt, err := BranchBound(p, BBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := BranchBound(p, BBConfig{MaxNodes: 10, WarmStart: opt.X})
	if err != nil {
		t.Fatal(err)
	}
	if !solutionsEqual(cold, warm) {
		t.Fatalf("node-limited warm diverged from cold: cold=%+v warm=%+v", cold, warm)
	}
	if warm.WarmUsed {
		t.Fatal("node-limited warm search must not be adopted")
	}
}

// TestWarmStartTieSeed constructs an instance with duplicate-valued
// items so multiple assignments tie the optimum, then seeds with a
// tying assignment that differs from the cold tie-break. The fallback
// rule must surface the cold search's own winner.
func TestWarmStartTieSeed(t *testing.T) {
	// Four identical items, capacity for exactly two: any pair ties.
	p := &Problem{
		Values: []float64{1, 1, 1, 1},
		Constraints: []Constraint{
			{Weights: []float64{1, 1, 1, 1}, Capacity: 2},
		},
	}
	cold, err := BranchBound(p, BBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the "other" pair.
	seed := make([]bool, 4)
	picked := 0
	for i := 3; i >= 0 && picked < 2; i-- {
		if !cold.X[i] {
			seed[i] = true
			picked++
		}
	}
	if picked < 2 {
		t.Skip("cold solution leaves fewer than two items; tie seed impossible")
	}
	warm, err := BranchBound(p, BBConfig{WarmStart: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !solutionsEqual(cold, warm) {
		t.Fatalf("tying seed leaked into the result: cold=%+v warm=%+v", cold, warm)
	}
	if warm.WarmUsed {
		t.Fatal("a tying seed must never be adopted as the final solution")
	}
}

// TestGreedyMatchesBranchBoundIncumbent pins that the greedy admission
// scan shared between Greedy and BranchBound's incumbent produces the
// same assignment through both entry points.
func TestGreedyMatchesBranchBoundIncumbent(t *testing.T) {
	rng := stats.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng, 10, 2)
		g := Greedy(p)
		// A branch-and-bound run with a zero node budget... isn't
		// expressible (0 means default), so instead check the greedy
		// value is never above the exact optimum and is feasible.
		if !p.Feasible(g.X) {
			t.Fatalf("trial %d: greedy infeasible", trial)
		}
		exact, err := BranchBound(p, BBConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if g.Value > exact.Value+1e-9 {
			t.Fatalf("trial %d: greedy %v beats exact %v", trial, g.Value, exact.Value)
		}
	}
}

package behavior

import (
	"math"
	"testing"

	"lpvs/internal/anxiety"
	"lpvs/internal/stats"
)

func defaultLog(tb testing.TB) *Log {
	tb.Helper()
	log, err := Generate(DefaultLogConfig())
	if err != nil {
		tb.Fatal(err)
	}
	return log
}

func TestGenerateValidation(t *testing.T) {
	bad := []LogConfig{
		{Users: 0, EventsPerUser: 10},
		{Users: 10, EventsPerUser: 0},
		{Users: 10, EventsPerUser: 10, OpportunisticRate: 1},
		{Users: 10, EventsPerUser: 10, StrandedRate: -0.1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	log := defaultLog(t)
	if len(log.TrueThresholds) != 2032 {
		t.Fatalf("users = %d", len(log.TrueThresholds))
	}
	if len(log.Events) < 2032*20 {
		t.Fatalf("only %d events", len(log.Events))
	}
	for _, e := range log.Events {
		if e.Level < 1 || e.Level > 100 {
			t.Fatalf("event level %d", e.Level)
		}
	}
	for _, th := range log.TrueThresholds {
		if th < 1 || th > 100 {
			t.Fatalf("threshold %d", th)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := defaultLog(t), defaultLog(t)
	if len(a.Events) != len(b.Events) {
		t.Fatal("event counts differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestEstimateRecoversThresholds(t *testing.T) {
	log := defaultLog(t)
	_, estimates, err := Estimate(log, EstimateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mae := ThresholdError(log, estimates)
	// Anxiety-driven events have sigma 2.5 jitter; the quantile
	// estimator should land within a few battery points on average
	// despite 25% opportunistic and 8% stranded contamination.
	if mae > 6 {
		t.Fatalf("mean absolute threshold error %v points, want <= 6", mae)
	}
}

func TestEstimateBeatsNaiveMean(t *testing.T) {
	log := defaultLog(t)
	_, quantileEst, err := Estimate(log, EstimateConfig{Quantile: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	_, meanish, err := Estimate(log, EstimateConfig{Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// The median is already decent, but the low quantile must not be
	// worse once opportunistic charging contaminates the top of each
	// user's distribution.
	if ThresholdError(log, quantileEst) > ThresholdError(log, meanish)+1 {
		t.Fatalf("low-quantile estimator (%v) much worse than median (%v)",
			ThresholdError(log, quantileEst), ThresholdError(log, meanish))
	}
}

func TestBehaviouralCurveMatchesCanonical(t *testing.T) {
	log := defaultLog(t)
	curve, _, err := Estimate(log, EstimateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	canon := anxiety.NewCanonical()
	worst := 0.0
	for level := 10; level <= 100; level += 10 {
		e := float64(level) / 100
		d := math.Abs(curve.Anxiety(e) - canon.Anxiety(e))
		if d > worst {
			worst = d
		}
	}
	if worst > 0.12 {
		t.Fatalf("behavioural curve deviates from ground truth by %v", worst)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, _, err := Estimate(nil, EstimateConfig{}); err == nil {
		t.Fatal("nil log accepted")
	}
	if _, _, err := Estimate(&Log{}, EstimateConfig{}); err == nil {
		t.Fatal("empty log accepted")
	}
	log := &Log{Events: []ChargeEvent{{UserID: 0, Level: 200}}}
	if _, _, err := Estimate(log, EstimateConfig{}); err == nil {
		t.Fatal("bad level accepted")
	}
	log = &Log{Events: []ChargeEvent{{UserID: -1, Level: 20}}}
	if _, _, err := Estimate(log, EstimateConfig{}); err == nil {
		t.Fatal("negative user accepted")
	}
	log = &Log{Events: []ChargeEvent{{UserID: 0, Level: 20}}}
	if _, _, err := Estimate(log, EstimateConfig{MinEvents: 5}); err == nil {
		t.Fatal("under-observed population accepted")
	}
	if _, _, err := Estimate(defaultLog(t), EstimateConfig{Quantile: 2}); err == nil {
		t.Fatal("bad quantile accepted")
	}
}

func TestEstimateSkipsSparseUsers(t *testing.T) {
	log := &Log{
		Events: []ChargeEvent{
			{UserID: 0, Level: 20}, {UserID: 0, Level: 22}, {UserID: 0, Level: 19},
			{UserID: 1, Level: 50}, // only one event
		},
		TrueThresholds: []int{20, 50},
	}
	_, estimates, err := Estimate(log, EstimateConfig{MinEvents: 3})
	if err != nil {
		t.Fatal(err)
	}
	if estimates[1] != -1 {
		t.Fatal("sparse user not skipped")
	}
	if estimates[0] < 18 || estimates[0] > 22 {
		t.Fatalf("estimate %d for threshold 20", estimates[0])
	}
}

func TestThresholdErrorEdgeCases(t *testing.T) {
	if ThresholdError(nil, nil) != 0 {
		t.Fatal("nil log")
	}
	log := &Log{TrueThresholds: []int{20}}
	if ThresholdError(log, []int{-1}) != 0 {
		t.Fatal("all-skipped estimates")
	}
}

func TestCustomThresholdDistribution(t *testing.T) {
	cfg := DefaultLogConfig()
	cfg.Users = 50
	cfg.Thresholds = func(*stats.RNG) int { return 30 }
	log, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range log.TrueThresholds {
		if th != 30 {
			t.Fatalf("threshold %d, want 30", th)
		}
	}
	_, estimates, err := Estimate(log, EstimateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if mae := ThresholdError(log, estimates); mae > 5 {
		t.Fatalf("MAE %v for a point-mass population", mae)
	}
}

// Package behavior implements the paper's stated future work (section
// III-C): estimating the low-battery-anxiety curve from users' *real
// charging behaviour* instead of survey answers, avoiding the pitfall
// that "participants' answers truthfully reflect their feelings" may not
// hold.
//
// The package provides two halves:
//
//   - a generator of realistic charging logs: each user carries a hidden
//     anxiety threshold (the battery level at which they start charging
//     when they can), but observed plug-in events are noisy — users also
//     charge opportunistically at high levels (desk charger, car) and
//     occasionally get stranded far below their threshold;
//   - an estimator that recovers each user's threshold from their event
//     history and rebuilds the anxiety curve with the paper's original
//     cumulative-bin extraction.
//
// The estimator uses a low quantile of each user's plug-in levels:
// opportunistic charges bias the mean upward but barely move the lower
// quantiles, which track the anxiety-driven charges.
package behavior

import (
	"fmt"
	"sort"

	"lpvs/internal/anxiety"
	"lpvs/internal/stats"
)

// ChargeEvent is one observed plug-in: a user connected a charger with
// the battery at Level percent.
type ChargeEvent struct {
	UserID int
	// Level is the battery percentage in [1, 100] at plug-in time.
	Level int
}

// LogConfig parameterises the synthetic charging-log generator.
type LogConfig struct {
	Seed int64
	// Users is the population size.
	Users int
	// EventsPerUser is the expected number of plug-ins per user.
	EventsPerUser int
	// OpportunisticRate is the probability a plug-in is convenience-
	// driven (desk/car charger) rather than anxiety-driven.
	OpportunisticRate float64
	// StrandedRate is the probability the user could not charge at
	// their threshold and plugged in far below it.
	StrandedRate float64
	// Thresholds draws each user's hidden anxiety threshold; nil means
	// the Fig. 2-calibrated survey distribution.
	Thresholds func(*stats.RNG) int
}

// DefaultLogConfig mirrors the survey population with a month of
// charging behaviour per user.
func DefaultLogConfig() LogConfig {
	return LogConfig{
		Seed:              1,
		Users:             2032,
		EventsPerUser:     30,
		OpportunisticRate: 0.25,
		StrandedRate:      0.08,
	}
}

// Log is a charging-behaviour dataset with the hidden ground truth kept
// for evaluation.
type Log struct {
	Events []ChargeEvent
	// TrueThresholds maps user ID to the hidden anxiety threshold the
	// generator used — available only because the log is synthetic, and
	// used to validate the estimator.
	TrueThresholds []int
}

// Generate synthesises a charging log.
func Generate(cfg LogConfig) (*Log, error) {
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("behavior: users %d", cfg.Users)
	}
	if cfg.EventsPerUser <= 0 {
		return nil, fmt.Errorf("behavior: events per user %d", cfg.EventsPerUser)
	}
	if cfg.OpportunisticRate < 0 || cfg.OpportunisticRate >= 1 {
		return nil, fmt.Errorf("behavior: opportunistic rate %v outside [0, 1)", cfg.OpportunisticRate)
	}
	if cfg.StrandedRate < 0 || cfg.StrandedRate >= 1 {
		return nil, fmt.Errorf("behavior: stranded rate %v outside [0, 1)", cfg.StrandedRate)
	}
	thresholds := cfg.Thresholds
	if thresholds == nil {
		thresholds = surveyLikeThreshold
	}
	rng := stats.NewRNG(cfg.Seed)
	log := &Log{TrueThresholds: make([]int, cfg.Users)}
	for u := 0; u < cfg.Users; u++ {
		truth := clampLevel(thresholds(rng))
		log.TrueThresholds[u] = truth
		n := cfg.EventsPerUser + rng.Intn(cfg.EventsPerUser/2+1) - cfg.EventsPerUser/4
		if n < 3 {
			n = 3
		}
		for e := 0; e < n; e++ {
			log.Events = append(log.Events, ChargeEvent{UserID: u, Level: sampleEvent(rng, cfg, truth)})
		}
	}
	return log, nil
}

// sampleEvent draws one plug-in level for a user with the given hidden
// threshold.
func sampleEvent(rng *stats.RNG, cfg LogConfig, truth int) int {
	switch {
	case rng.Bool(cfg.OpportunisticRate):
		// Convenience charging anywhere above the threshold.
		return clampLevel(int(rng.Uniform(float64(truth), 96)) + 1)
	case rng.Bool(cfg.StrandedRate):
		// Could not charge in time; plugged in well below the threshold.
		return clampLevel(truth - int(rng.Exponential(10)) - 3)
	default:
		// Anxiety-driven: near the threshold with small jitter.
		return clampLevel(truth + int(rng.Normal(0, 2.5)+0.5))
	}
}

// surveyLikeThreshold draws from the Fig. 2-calibrated shape: inverse-
// transform sampling of the canonical anxiety curve (the same logic the
// survey generator uses for charge-threshold answers).
func surveyLikeThreshold(rng *stats.RNG) int {
	m := anxiety.NewCanonical()
	u := rng.Float64()
	// Binary search the monotone curve for phi(e) = u.
	lo, hi := 0.0, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if m.Anxiety(mid) > u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return clampLevel(int(lo*100 + 0.5))
}

func clampLevel(v int) int {
	if v < 1 {
		return 1
	}
	if v > 100 {
		return 100
	}
	return v
}

// EstimateConfig tunes the threshold estimator.
type EstimateConfig struct {
	// Quantile of each user's plug-in levels taken as their threshold
	// estimate; low quantiles reject opportunistic charges. Zero means
	// 0.25.
	Quantile float64
	// MinEvents drops users with fewer observations. Zero means 3.
	MinEvents int
}

// Estimate recovers per-user thresholds from a charging log and rebuilds
// the anxiety curve with the paper's four-step extraction. It returns
// the curve and the per-user estimates (indexed by user ID, -1 for users
// with too few events).
func Estimate(log *Log, cfg EstimateConfig) (*anxiety.Curve, []int, error) {
	if log == nil || len(log.Events) == 0 {
		return nil, nil, fmt.Errorf("behavior: empty log")
	}
	if cfg.Quantile == 0 {
		cfg.Quantile = 0.25
	}
	if cfg.Quantile < 0 || cfg.Quantile > 1 {
		return nil, nil, fmt.Errorf("behavior: quantile %v outside [0, 1]", cfg.Quantile)
	}
	if cfg.MinEvents == 0 {
		cfg.MinEvents = 3
	}

	perUser := make(map[int][]float64)
	maxUser := 0
	for _, e := range log.Events {
		if e.Level < 1 || e.Level > 100 {
			return nil, nil, fmt.Errorf("behavior: event level %d outside [1, 100]", e.Level)
		}
		if e.UserID < 0 {
			return nil, nil, fmt.Errorf("behavior: negative user ID %d", e.UserID)
		}
		perUser[e.UserID] = append(perUser[e.UserID], float64(e.Level))
		if e.UserID > maxUser {
			maxUser = e.UserID
		}
	}

	estimates := make([]int, maxUser+1)
	for i := range estimates {
		estimates[i] = -1
	}
	var answers []int
	users := make([]int, 0, len(perUser))
	for u := range perUser {
		users = append(users, u)
	}
	sort.Ints(users)
	for _, u := range users {
		levels := perUser[u]
		if len(levels) < cfg.MinEvents {
			continue
		}
		est := clampLevel(int(stats.Percentile(levels, cfg.Quantile*100) + 0.5))
		estimates[u] = est
		answers = append(answers, est)
	}
	if len(answers) == 0 {
		return nil, nil, fmt.Errorf("behavior: no user has %d+ events", cfg.MinEvents)
	}
	curve, err := anxiety.Extract(answers)
	if err != nil {
		return nil, nil, err
	}
	return curve, estimates, nil
}

// ThresholdError summarises estimator accuracy against the generator's
// hidden truth: mean absolute error in battery-level points.
func ThresholdError(log *Log, estimates []int) float64 {
	if log == nil {
		return 0
	}
	sum, n := 0.0, 0
	for u, truth := range log.TrueThresholds {
		if u >= len(estimates) || estimates[u] < 0 {
			continue
		}
		d := float64(estimates[u] - truth)
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

package emu

import (
	"fmt"
	"testing"
)

// BenchmarkRun measures the end-to-end emulation cost per cluster size.
func BenchmarkRun(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := baseConfig()
			cfg.GroupSize = n
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := New(cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompare measures the paired (treated + baseline) evaluation
// used by every paper figure.
func BenchmarkCompare(b *testing.B) {
	cfg := baseConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

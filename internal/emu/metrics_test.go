package emu

import (
	"strings"
	"testing"

	"lpvs/internal/video"
)

func TestSlotStatTimingAndProgress(t *testing.T) {
	var calls []SlotStat
	var policies []string
	cfg := Config{
		Seed: 1, GroupSize: 12, Slots: 3, Lambda: 1, ServerStreams: -1,
		Genre: video.Gaming,
		Progress: func(policy string, st SlotStat) {
			policies = append(policies, policy)
			calls = append(calls, st)
		},
	}
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != res.SlotsRun {
		t.Fatalf("progress called %d times for %d slots", len(calls), res.SlotsRun)
	}
	for i, st := range calls {
		if st.Slot != i {
			t.Fatalf("progress slot %d at call %d", st.Slot, i)
		}
		if policies[i] == "" {
			t.Fatal("progress without policy name")
		}
	}
	sumSched := 0.0
	for _, st := range res.Timeline {
		if st.SchedSec < 0 || st.PlaySec < 0 || st.CompactSec < 0 ||
			st.Phase1Sec < 0 || st.Phase2Sec < 0 {
			t.Fatalf("negative timing %+v", st)
		}
		if st.MeanGamma <= 0 || st.MeanGamma >= 1 {
			t.Fatalf("mean gamma %v outside (0, 1)", st.MeanGamma)
		}
		if st.Eligible < st.Selected {
			t.Fatalf("selected %d > eligible %d", st.Selected, st.Eligible)
		}
		sumSched += st.SchedSec
	}
	if diff := sumSched - res.SchedSeconds; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("per-slot sched %v != total %v", sumSched, res.SchedSeconds)
	}
}

func TestWriteMetricsSharedVocabulary(t *testing.T) {
	cfg := Config{Seed: 1, GroupSize: 10, Slots: 2, Lambda: 1, ServerStreams: -1, Genre: video.Gaming}
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		// Names shared with the daemon's registry.
		"# TYPE lpvs_ticks_total counter",
		"lpvs_ticks_total 2",
		"# TYPE lpvs_tick_duration_seconds histogram",
		"lpvs_tick_duration_seconds_count 2",
		"lpvs_sched_phase1_seconds_count 2",
		"lpvs_gamma_mean",
		"lpvs_devices 10",
		// Run-level evaluation summaries.
		"# HELP lpvs_energy_saving_ratio",
		"lpvs_anxiety_mean",
		"lpvs_tpv_minutes_count 10",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("dump:\n%s", text)
	}
}

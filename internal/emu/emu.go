// Package emu implements the LPVS emulator (paper section VI, Fig. 6):
// a time-slotted loop of information gathering, one-slot-ahead request
// scheduling, video transforming, playback with battery drain, and
// Bayesian updating of the per-device power-reduction ratio.
//
// A virtual cluster is the audience sharing one edge server — by default
// one Twitch channel's viewers, optionally split across several live
// streams (Config.Streams). Every device plays its stream on its own
// display (so with its own power rates) and its own battery. Metrics
// mirror the paper's evaluation:
//
//   - display energy saving ratio (Figs. 7, 8a): the energy actually
//     drawn by displays vs. what the same played content would have
//     drawn untransformed;
//   - anxiety reduction (Figs. 7, 8b): mean anxiety degree across
//     devices and slots, compared against a paired baseline run without
//     LPVS (same seed, same workload);
//   - time per viewer (Fig. 9): watching minutes until give-up, device
//     death, or stream end;
//   - scheduler running time (Fig. 10).
package emu

import (
	"context"
	"fmt"
	"time"

	"lpvs/internal/anxiety"
	"lpvs/internal/bayes"
	"lpvs/internal/device"
	"lpvs/internal/display"
	"lpvs/internal/edge"
	"lpvs/internal/obs"
	"lpvs/internal/obs/audit"
	"lpvs/internal/obs/flight"
	"lpvs/internal/obs/history"
	"lpvs/internal/obs/slo"
	"lpvs/internal/obs/span"
	"lpvs/internal/scheduler"
	"lpvs/internal/stats"
	"lpvs/internal/transform"
	"lpvs/internal/video"
)

// Config parameterises one emulation run.
type Config struct {
	Seed int64
	// GroupSize is the virtual-cluster size N.
	GroupSize int
	// Slots is the stream length in scheduling slots (5 minutes each).
	Slots int
	// Lambda is the scheduler's energy/anxiety balance.
	Lambda float64
	// ServerStreams sizes the edge server in concurrently transformable
	// 720p streams; negative means unbounded capacity.
	ServerStreams int
	// Genre of the cluster's live stream(s).
	Genre video.Genre
	// Streams is the number of distinct live streams watched within the
	// virtual cluster (a base-station area serves several channels);
	// devices are assigned round-robin. Zero means 1. Streams beyond the
	// first rotate through the other genres.
	Streams int
	// SlotSec and ChunkSec shape the timeline; zero means defaults
	// (300 s slots of 10 s chunks).
	SlotSec, ChunkSec float64
	// Tolerance is the distortion budget granted to transforms, in
	// [0, 1].
	Tolerance float64
	// Device generation; zero value means device.DefaultGenConfig.
	Device device.GenConfig
	// Anxiety is the phi model; nil means the canonical curve.
	Anxiety anxiety.Model
	// CacheHitRatio / CacheMinPrefix override the probabilistic chunk
	// cache; zero values mean the default cache.
	CacheHitRatio, CacheMinPrefix float64
	// LRUCacheMB and PrefetchMBPerSlot, when both positive, replace the
	// probabilistic availability model with a real LRU cache filled by a
	// budgeted CDN-to-edge prefetcher (the paper's content delivery
	// strategy).
	LRUCacheMB, PrefetchMBPerSlot float64
	// DisableSwap turns off Phase-2 in the LPVS scheduler (ablation).
	DisableSwap bool
	// DisableIncremental turns off the scheduler's cross-slot incremental
	// caches (DESIGN.md §11), forcing every slot down the cold path.
	// Decisions are byte-identical either way.
	DisableIncremental bool
	// SchedDeadline bounds each slot's scheduling wall time; on expiry
	// the LPVS scheduler degrades to its anytime shortcuts (DESIGN.md
	// §12) and the slot is flagged in SlotStat. Zero means unbounded.
	// Only applies to the LPVS scheduler (serial or pooled).
	SchedDeadline time.Duration
	// FixedGamma, when positive, disables Bayesian learning and plans
	// with this constant reduction ratio (ablation).
	FixedGamma float64
	// UseFrames switches the transform engine to the per-pixel keyframe
	// path: chunks carry synthetic keyframes, and selected streams are
	// transformed pixel by pixel instead of through the calibrated
	// aggregate statistics.
	UseFrames bool
	// AutoDimBelow, when positive, emulates the OS power saver: devices
	// whose battery drops under this fraction dim their display to
	// AutoDimFactor of its brightness — without compensation, so the
	// full luminance loss is perceived. The practical client-side
	// alternative LPVS competes against.
	AutoDimBelow float64
	// AutoDimFactor is the dimmed brightness multiplier in (0, 1];
	// zero means 0.6 when auto-dim is enabled.
	AutoDimFactor float64
	// PersonalizedAnxiety derives a per-device anxiety curve from each
	// owner's give-up threshold (users worry before they quit), so the
	// scheduler optimises personal curves instead of the population
	// average.
	PersonalizedAnxiety bool
	// ExactThreshold forwards to the scheduler; zero means its default.
	ExactThreshold int
	// Workers drives slots through the sharded scheduler.Pool with this
	// fan-out: the per-device information-compacting step inside the
	// slot parallelises across that many goroutines, and SlotStat gains
	// the wall-vs-CPU split. Zero or one keeps the serial policy path.
	// Only applies to the LPVS scheduler (a nil policy in New); explicit
	// baseline policies always run serially. Decisions are bit-identical
	// either way — see the scheduler package's differential tests.
	Workers int
	// Progress, when non-nil, receives each slot's aggregate snapshot as
	// soon as the slot finishes — live telemetry for long campaigns. The
	// policy name distinguishes the treated run from the paired baseline.
	Progress func(policy string, st SlotStat)
	// AuditDir, when non-empty, appends one decision audit record per
	// scheduled slot to AuditDir/audit.jsonl (internal/obs/audit).
	// Records are only written when the deciding policy is the LPVS
	// scheduler (serial or pooled); baselines are not auditable.
	AuditDir string
	// StopAfter, when positive, ends the run after that many total
	// slots — before stream finalisation — so the caller can
	// Checkpoint() the emulator and resume it in a later process
	// (durable state, DESIGN.md §14). Zero runs all Slots.
	StopAfter int
	// SLOSlotLatency is the scheduling wall-time budget per slot behind
	// the emulator's slot-latency SLO (slower slots count as bad
	// events); zero means 250ms. The SLO engine runs on a synthetic
	// clock advancing SlotSec per slot, so campaign reports state SLO
	// compliance with the same burn-rate code that pages on the daemon.
	SLOSlotLatency time.Duration
	// Tracer, when non-nil, traces each slot as a span tree: slot →
	// gather / schedule (→ vc → compact / phase1 / phase2) / play /
	// bayes-update. Decisions are identical with tracing on or off.
	Tracer *span.Tracer
	// FlightDir, when non-empty, arms a flight recorder on the run's
	// synthetic-clock SLO engine: every alarm firing freezes an
	// incident bundle (per-slot metric history, the span ring, recent
	// audit records) into FlightDir — the same bundle format lpvsd
	// writes, inspectable with lpvs-flight. Pure observation: excluded
	// from the checkpoint config hash, decisions identical either way.
	FlightDir string
}

// normalized fills defaults and validates.
func (c Config) normalized() (Config, error) {
	if c.GroupSize <= 0 {
		return c, fmt.Errorf("emu: group size %d", c.GroupSize)
	}
	if c.Slots <= 0 {
		return c, fmt.Errorf("emu: slot count %d", c.Slots)
	}
	if c.SlotSec == 0 {
		c.SlotSec = scheduler.DefaultSlotSeconds
	}
	if c.ChunkSec == 0 {
		c.ChunkSec = video.DefaultChunkSeconds
	}
	if c.SlotSec <= 0 || c.ChunkSec <= 0 || c.ChunkSec > c.SlotSec {
		return c, fmt.Errorf("emu: bad slot/chunk lengths %v/%v", c.SlotSec, c.ChunkSec)
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.70
	}
	if c.Tolerance < 0 || c.Tolerance > 1 {
		return c, fmt.Errorf("emu: tolerance %v outside [0, 1]", c.Tolerance)
	}
	if c.Device.InitMean == 0 && c.Device.InitStd == 0 {
		sampler := c.Device.GiveUpSampler
		c.Device = device.DefaultGenConfig()
		c.Device.GiveUpSampler = sampler
	}
	if c.Anxiety == nil {
		c.Anxiety = anxiety.NewCanonical()
	}
	if c.CacheHitRatio == 0 && c.CacheMinPrefix == 0 {
		dc := edge.DefaultCache()
		c.CacheHitRatio, c.CacheMinPrefix = dc.HitRatio, dc.MinPrefix
	}
	if c.FixedGamma < 0 || c.FixedGamma >= 1 {
		return c, fmt.Errorf("emu: fixed gamma %v outside [0, 1)", c.FixedGamma)
	}
	if c.Streams == 0 {
		c.Streams = 1
	}
	if c.Streams < 1 || c.Streams > c.GroupSize {
		return c, fmt.Errorf("emu: %d streams for %d devices", c.Streams, c.GroupSize)
	}
	if c.AutoDimBelow < 0 || c.AutoDimBelow > 1 {
		return c, fmt.Errorf("emu: auto-dim threshold %v outside [0, 1]", c.AutoDimBelow)
	}
	if c.AutoDimBelow > 0 && c.AutoDimFactor == 0 {
		c.AutoDimFactor = 0.6
	}
	if c.AutoDimBelow > 0 && (c.AutoDimFactor <= 0 || c.AutoDimFactor > 1) {
		return c, fmt.Errorf("emu: auto-dim factor %v outside (0, 1]", c.AutoDimFactor)
	}
	if (c.LRUCacheMB > 0) != (c.PrefetchMBPerSlot > 0) {
		return c, fmt.Errorf("emu: LRUCacheMB and PrefetchMBPerSlot must be set together")
	}
	if c.LRUCacheMB < 0 || c.PrefetchMBPerSlot < 0 {
		return c, fmt.Errorf("emu: negative LRU cache parameters")
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("emu: negative worker count %d", c.Workers)
	}
	if c.SchedDeadline < 0 {
		return c, fmt.Errorf("emu: negative scheduling deadline %v", c.SchedDeadline)
	}
	if c.StopAfter < 0 || c.StopAfter > c.Slots {
		return c, fmt.Errorf("emu: stop-after %d outside [0, %d]", c.StopAfter, c.Slots)
	}
	return c, nil
}

// RunResult aggregates one emulation run.
type RunResult struct {
	Policy   string
	SlotsRun int
	// DisplayEnergyJ is the display energy actually drawn.
	DisplayEnergyJ float64
	// UntransformedDisplayEnergyJ is what the same played seconds would
	// have drawn without transforms.
	UntransformedDisplayEnergyJ float64
	// AnxietySum accumulates the anxiety degree over device-slots;
	// AnxietySamples counts them.
	AnxietySum     float64
	AnxietySamples int
	// TPVMin is the watching time per device in minutes.
	TPVMin []float64
	// LowBatteryStart flags devices that began in (0, 40%].
	LowBatteryStart []bool
	// EverServed flags devices selected for transforming at least once.
	EverServed []bool
	// FinalState per device.
	FinalState []device.State
	// SchedSeconds is the cumulative scheduler wall time; SchedCPUSeconds
	// is the matching CPU-sum across pool workers. They coincide on the
	// serial path; under a multi-worker pool the wall figure is what the
	// paper's Fig. 10 overhead metric should report.
	SchedSeconds    float64
	SchedCPUSeconds float64
	// QualityLossSum / QualityLossSamples track the perceptual
	// distortion introduced per played chunk, by transforms and by the
	// uncompensated auto-dim power saver. The Affected pair restricts
	// the average to chunks that were actually altered.
	QualityLossSum         float64
	QualityLossSamples     int
	AffectedQualitySum     float64
	AffectedQualitySamples int
	// SelectedPerSlot records how many devices each slot transformed.
	SelectedPerSlot []int
	// Timeline records per-slot aggregates for post-hoc analysis.
	Timeline []SlotStat
	// DegradedSlots counts slots whose decision was degraded by the
	// scheduling deadline (Config.SchedDeadline).
	DegradedSlots int
	// PredErrSum / PredErrSamples accumulate the absolute error between
	// the scheduler's compacted energy forecast for a slot and the
	// realised end-of-slot battery fraction, for devices that played the
	// slot through. Validates the paper's information-compacted model
	// (Eqs. (3), (5), (12)) against the emulated ground truth.
	PredErrSum     float64
	PredErrSamples int
	// SLO holds the final burn-rate states of the run's scheduling
	// objectives, evaluated once per slot on a synthetic clock that
	// advances SlotSec per slot; SLOAlarms counts alarm firings across
	// the run (DESIGN.md §13).
	SLO       []slo.State
	SLOAlarms int
	// FlightBundles counts incident bundles the run's flight recorder
	// wrote (Config.FlightDir; 0 when disarmed).
	FlightBundles int
}

// SlotStat is one slot's aggregate snapshot, taken after playback.
type SlotStat struct {
	Slot           int
	Watching       int
	Selected       int
	Eligible       int
	Swaps          int
	MeanEnergyFrac float64
	MeanAnxiety    float64
	// MeanGamma is the cluster mean of the Bayesian gamma estimates
	// (FixedGamma when learning is disabled).
	MeanGamma float64
	// SchedSec is the slot's scheduling wall time, with the compacting /
	// Phase-1 / Phase-2 breakdown alongside; SchedCPUSec is the CPU-sum
	// across pool workers (equal to SchedSec on the serial path); PlaySec
	// is the playback (battery-drain) emulation time.
	SchedSec    float64
	SchedCPUSec float64
	CompactSec  float64
	Phase1Sec   float64
	Phase2Sec   float64
	PlaySec     float64
	// CacheHits/CacheMisses report the slot's incremental plan-cache
	// traffic; Replayed marks slots whose whole decision was served from
	// the previous slot (DESIGN.md §11). All zero with incremental off.
	CacheHits   int
	CacheMisses int
	Replayed    bool
	// Degraded marks a slot whose decision hit the scheduling deadline
	// and took the anytime shortcuts; DegradedReason says which
	// (DESIGN.md §12).
	Degraded       bool
	DegradedReason string
}

// EnergySavingRatio is the paper's Fig. 7/8a metric.
func (r *RunResult) EnergySavingRatio() float64 {
	if r.UntransformedDisplayEnergyJ <= 0 {
		return 0
	}
	return (r.UntransformedDisplayEnergyJ - r.DisplayEnergyJ) / r.UntransformedDisplayEnergyJ
}

// MeanAnxiety is the average anxiety degree over device-slots.
func (r *RunResult) MeanAnxiety() float64 {
	if r.AnxietySamples == 0 {
		return 0
	}
	return r.AnxietySum / float64(r.AnxietySamples)
}

// MeanQualityLoss is the average perceptual distortion per played chunk.
func (r *RunResult) MeanQualityLoss() float64 {
	if r.QualityLossSamples == 0 {
		return 0
	}
	return r.QualityLossSum / float64(r.QualityLossSamples)
}

// MeanAffectedQualityLoss averages distortion over only the chunks that
// were transformed or dimmed — how hard an intervention hits when it
// hits.
func (r *RunResult) MeanAffectedQualityLoss() float64 {
	if r.AffectedQualitySamples == 0 {
		return 0
	}
	return r.AffectedQualitySum / float64(r.AffectedQualitySamples)
}

// MeanEnergyPredictionError is the average absolute gap (in battery
// fraction) between the scheduler's slot forecast and reality.
func (r *RunResult) MeanEnergyPredictionError() float64 {
	if r.PredErrSamples == 0 {
		return 0
	}
	return r.PredErrSum / float64(r.PredErrSamples)
}

// MeanTPVMin averages watching minutes over a device subset (nil filter
// means all devices).
func (r *RunResult) MeanTPVMin(filter func(i int) bool) float64 {
	sum, n := 0.0, 0
	for i, tpv := range r.TPVMin {
		if filter != nil && !filter(i) {
			continue
		}
		sum += tpv
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Emulator drives one virtual cluster under one policy.
type Emulator struct {
	cfg    Config
	policy scheduler.Policy
	// pool, when non-nil, drives each slot through the sharded engine
	// instead of calling the policy directly (Config.Workers > 1).
	pool *scheduler.Pool

	devices    []*device.Device
	estimators []*bayes.GammaEstimator
	// streams are the VC's live channels; deviceStream[i] indexes the
	// stream device i watches.
	streams      []*video.Video
	deviceStream []int
	cache        *edge.Cache
	cacheRNG     *stats.RNG
	prefetcher   *edge.Prefetcher            // non-nil when the LRU model is enabled
	strategies   map[bool]transform.Strategy // key: isOLED
	// frameCache memoises per-pixel transform results within one slot:
	// ApplyFrame depends only on the keyframe, the tolerance, and the
	// display type — not on the individual device — so one transform per
	// (stream, chunk, type) serves the whole cluster.
	frameCache map[frameKey]transform.Result

	// Durable-state cursor (DESIGN.md §14): nextSlot is the first slot
	// the next Run call executes; resume carries the accumulated partial
	// result installed by Restore.
	nextSlot int
	resume   *RunResult
}

// frameKey identifies a memoised per-pixel transform.
type frameKey struct {
	stream, chunk int
	oled          bool
}

// New builds an emulator. If policy is nil, the LPVS scheduler is
// constructed from the config (the common case); pass an explicit policy
// to run baselines.
func New(cfg Config, policy scheduler.Policy) (*Emulator, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	var pool *scheduler.Pool
	if policy == nil {
		if cfg.Workers > 1 {
			scfg, err := SchedulerConfig(cfg)
			if err != nil {
				return nil, err
			}
			pool, err = scheduler.NewPool(scfg, scheduler.PoolConfig{Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			policy = pool.Scheduler()
		} else {
			policy, err = BuildLPVSPolicy(cfg)
			if err != nil {
				return nil, err
			}
		}
	}
	rng := stats.NewRNG(cfg.Seed)
	deviceRNG := rng.Fork()
	contentRNG := rng.Fork()
	cacheRNG := rng.Fork()

	devices, err := device.NewFleet(deviceRNG, cfg.GroupSize, cfg.Device)
	if err != nil {
		return nil, err
	}

	chunksPerSlot := int(cfg.SlotSec / cfg.ChunkSec)
	genres := video.AllGenres()
	streams := make([]*video.Video, cfg.Streams)
	for s := range streams {
		genre := cfg.Genre
		if s > 0 {
			genre = genres[(int(cfg.Genre)+s)%len(genres)]
		}
		vcfg := video.DefaultGenConfig(fmt.Sprintf("stream-%d", s), genre, cfg.Slots*chunksPerSlot)
		vcfg.ChunkSec = cfg.ChunkSec
		vcfg.WithKeyframes = cfg.UseFrames
		streams[s], err = video.Generate(contentRNG.Fork(), vcfg)
		if err != nil {
			return nil, err
		}
	}
	deviceStream := make([]int, len(devices))
	for i := range deviceStream {
		deviceStream[i] = i % cfg.Streams
	}

	cache, err := edge.NewCache(cfg.CacheHitRatio, cfg.CacheMinPrefix)
	if err != nil {
		return nil, err
	}
	var prefetcher *edge.Prefetcher
	if cfg.LRUCacheMB > 0 {
		lru, err := edge.NewLRUCache(cfg.LRUCacheMB)
		if err != nil {
			return nil, err
		}
		prefetcher, err = edge.NewPrefetcher(lru, cfg.PrefetchMBPerSlot)
		if err != nil {
			return nil, err
		}
	}

	estimators := make([]*bayes.GammaEstimator, len(devices))
	for i := range estimators {
		estimators[i] = bayes.NewGammaEstimator()
	}

	return &Emulator{
		cfg:          cfg,
		policy:       policy,
		pool:         pool,
		devices:      devices,
		estimators:   estimators,
		streams:      streams,
		deviceStream: deviceStream,
		cache:        cache,
		cacheRNG:     cacheRNG,
		prefetcher:   prefetcher,
		strategies: map[bool]transform.Strategy{
			false: transform.Default(display.LCD),
			true:  transform.Default(display.OLED),
		},
	}, nil
}

// BuildLPVSPolicy constructs the LPVS scheduler matching an emulator
// config.
func BuildLPVSPolicy(cfg Config) (scheduler.Policy, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	var server *edge.Server
	if cfg.ServerStreams >= 0 {
		server, err = edge.NewServer(cfg.ServerStreams)
		if err != nil {
			return nil, err
		}
	}
	return scheduler.New(scheduler.Config{
		SlotSec:            cfg.SlotSec,
		Lambda:             cfg.Lambda,
		Anxiety:            cfg.Anxiety,
		Server:             server,
		DisableSwap:        cfg.DisableSwap,
		ExactThreshold:     cfg.ExactThreshold,
		DisableIncremental: cfg.DisableIncremental,
	})
}

// SchedulerConfig exposes the scheduler configuration derived from an
// emulator config, for callers composing baseline policies.
func SchedulerConfig(cfg Config) (scheduler.Config, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return scheduler.Config{}, err
	}
	var server *edge.Server
	if cfg.ServerStreams >= 0 {
		server, err = edge.NewServer(cfg.ServerStreams)
		if err != nil {
			return scheduler.Config{}, err
		}
	}
	return scheduler.Config{
		SlotSec:            cfg.SlotSec,
		Lambda:             cfg.Lambda,
		Anxiety:            cfg.Anxiety,
		Server:             server,
		DisableSwap:        cfg.DisableSwap,
		ExactThreshold:     cfg.ExactThreshold,
		DisableIncremental: cfg.DisableIncremental,
	}, nil
}

// Run executes the emulation — all Slots, or only up to
// Config.StopAfter, or the remaining slots after a Restore — and
// returns the aggregated result.
func (e *Emulator) Run() (*RunResult, error) {
	startSlot := e.nextSlot
	endSlot := e.cfg.Slots
	if e.cfg.StopAfter > 0 && e.cfg.StopAfter < endSlot {
		endSlot = e.cfg.StopAfter
	}
	if startSlot >= endSlot {
		return nil, fmt.Errorf("emu: nothing to run (at slot %d, end %d)", startSlot, endSlot)
	}
	var res *RunResult
	if e.resume != nil {
		// Continuing a restored run: the accumulators carry on exactly
		// where the checkpointed process left them.
		res = e.resume
		e.resume = nil
	} else {
		res = &RunResult{
			Policy:          e.policy.Name(),
			TPVMin:          make([]float64, len(e.devices)),
			LowBatteryStart: make([]bool, len(e.devices)),
			EverServed:      make([]bool, len(e.devices)),
			FinalState:      make([]device.State, len(e.devices)),
		}
		for i, d := range e.devices {
			res.LowBatteryStart[i] = d.LowBattery()
		}
	}
	var auditLog *audit.Log
	if e.cfg.AuditDir != "" {
		var err error
		auditLog, err = audit.Open(e.cfg.AuditDir)
		if err != nil {
			return nil, fmt.Errorf("emu: %w", err)
		}
		defer auditLog.Close()
	}
	// The LPVS scheduler (serial or behind the pool) is the only policy
	// whose decisions carry the full config/verdict surface the audit
	// log replays.
	lpvsSched, _ := e.policy.(*scheduler.Scheduler)

	// SLO evaluation on a synthetic clock: one reading per slot, the
	// clock advancing SlotSec each time. Pure observation over already-
	// final slot stats — it cannot influence a decision.
	sloLatency := e.cfg.SLOSlotLatency
	if sloLatency <= 0 {
		sloLatency = 250 * time.Millisecond
	}
	var sloSlow, sloDegraded, sloTotal float64
	slotDur := time.Duration(e.cfg.SlotSec * float64(time.Second))
	// On a resumed run the SLO windows restart at the checkpoint slot —
	// burn-rate state is observation, not decision input, and is not
	// persisted (DESIGN.md §14).
	sloClock := time.Unix(0, 0).Add(time.Duration(startSlot) * slotDur)
	// flightRec is assigned after the engine exists; the transition
	// hook only fires from Evaluate inside the slot loop, by which time
	// it is set.
	var flightRec *flight.Recorder
	sloEng, err := slo.NewEngine(slo.Config{
		FastWindow: 2 * slotDur,
		SlowWindow: 10 * slotDur,
		Now:        func() time.Time { return sloClock },
		OnTransition: func(st slo.State) {
			if st.Alarming {
				res.SLOAlarms++
				if flightRec != nil {
					flightRec.OnSLOTransition(st)
				}
			}
		},
	},
		slo.Objective{
			Name:        "slot-latency",
			Description: "Slot scheduling must finish within " + sloLatency.String() + ".",
			Target:      0.99,
			Source:      func() (float64, float64) { return sloSlow, sloTotal },
		},
		slo.Objective{
			Name:        "degraded-slots",
			Description: "Slots must not degrade to the anytime deadline shortcuts.",
			Target:      0.99,
			Source:      func() (float64, float64) { return sloDegraded, sloTotal },
		},
	)
	if err != nil {
		return nil, fmt.Errorf("emu: slo engine: %w", err)
	}

	// Flight recorder on the synthetic clock (DESIGN.md §15): a small
	// live registry mirrors the shared metric vocabulary per slot, a
	// history store samples it on the slot clock, and SLO alarms freeze
	// the same bundle format lpvsd writes.
	var flightHist *history.Store
	var flightLive *liveMetrics
	if e.cfg.FlightDir != "" {
		reg := obs.NewRegistry()
		flightLive = newLiveMetrics(reg)
		flightHist = history.New(reg, history.Config{
			Window:   10 * slotDur,
			Interval: slotDur,
			Now:      func() time.Time { return sloClock },
		})
		flightRec, err = flight.New(flight.Config{
			Dir:       e.cfg.FlightDir,
			Triggers:  flight.Triggers{SLOAlarm: true, Manual: true},
			History:   flightHist,
			Tracer:    e.cfg.Tracer,
			SLOStates: sloEng.Snapshot,
			Binary:    "lpvs-emu",
			Now:       func() time.Time { return sloClock },
			// The synthetic clock advances SlotSec per slot, so the
			// default 30s cooldown would suppress nothing; keep it off
			// and let every alarm firing produce its bundle.
			Cooldown: -1,
		})
		if err != nil {
			return nil, fmt.Errorf("emu: flight recorder: %w", err)
		}
	}

	for slot := startSlot; slot < endSlot; slot++ {
		windows := e.slotWindows(slot)

		slotCtx, slotSp := e.cfg.Tracer.Start(context.Background(), "slot")
		slotSp.SetInt("slot", slot)
		_, gsp := span.Child(slotCtx, "gather")
		reqs, reqIdx := e.gatherRequests(windows)
		gsp.SetInt("requests", len(reqs))
		gsp.End()
		decision := scheduler.Decision{Transform: map[string]bool{}}
		schedSec, schedCPUSec := 0.0, 0.0
		if len(reqs) > 0 {
			schedCtx, ssp := span.Child(slotCtx, "schedule")
			cancel := context.CancelFunc(func() {})
			if e.cfg.SchedDeadline > 0 && (e.pool != nil || lpvsSched != nil) {
				schedCtx, cancel = context.WithTimeout(schedCtx, e.cfg.SchedDeadline)
			}
			if e.pool != nil {
				pres, err := e.pool.DecideCtx(schedCtx, []scheduler.VC{{ID: "vc", Requests: reqs}})
				if err != nil {
					cancel()
					ssp.End()
					slotSp.End()
					return nil, fmt.Errorf("emu: slot %d: %w", slot, err)
				}
				decision = pres.Decision()
				schedSec, schedCPUSec = pres.WallSeconds, pres.CPUSeconds
			} else {
				start := time.Now()
				var err error
				if lpvsSched != nil {
					decision, err = lpvsSched.ScheduleCtx(schedCtx, reqs)
				} else {
					decision, err = e.policy.Schedule(reqs)
				}
				if err != nil {
					cancel()
					ssp.End()
					slotSp.End()
					return nil, fmt.Errorf("emu: slot %d: %w", slot, err)
				}
				schedSec = time.Since(start).Seconds()
				schedCPUSec = schedSec
			}
			cancel()
			ssp.SetInt("selected", decision.Selected)
			ssp.End()
			res.SchedSeconds += schedSec
			res.SchedCPUSeconds += schedCPUSec
			// The flight tail mirrors the audit log: without -audit-dir
			// there is nothing to tee and the slot never pays for
			// encoding a record nobody persists.
			if auditLog != nil && lpvsSched != nil {
				rec := audit.NewRecord(slot, "vc", lpvsSched.Config(), reqs, decision)
				rec.Seed = e.cfg.Seed
				rec.UnixSec = float64(time.Now().UnixNano()) / 1e9
				rec.TraceID = slotSp.TraceID()
				// Encode once; the audit log and the flight recorder's
				// tail ring get the same bytes, so bundles replay
				// byte-identically against the log.
				line, err := rec.Encode()
				if err != nil {
					slotSp.End()
					return nil, fmt.Errorf("emu: slot %d: audit: %w", slot, err)
				}
				if auditLog != nil {
					if err := auditLog.AppendLine(line); err != nil {
						slotSp.End()
						return nil, fmt.Errorf("emu: slot %d: audit: %w", slot, err)
					}
				}
				if flightRec != nil {
					flightRec.NoteAudit(line)
				}
			}
		}
		res.SelectedPerSlot = append(res.SelectedPerSlot, decision.Selected)

		predicted := e.predictEnergies(reqs, decision)
		playStart := time.Now()
		e.playSlot(slotCtx, windows, decision, reqIdx, res)
		playSec := time.Since(playStart).Seconds()
		for k, i := range reqIdx {
			d := e.devices[i]
			if d.State != device.Watching {
				continue // truncated playback invalidates the forecast
			}
			err := predicted[k] - d.EnergyFrac()
			if err < 0 {
				err = -err
			}
			res.PredErrSum += err
			res.PredErrSamples++
		}

		// Anxiety census after the slot: every owner, watching or not,
		// feels their battery level.
		stat := SlotStat{
			Slot:           slot,
			Selected:       decision.Selected,
			Eligible:       decision.Eligible,
			Swaps:          decision.Swaps,
			SchedSec:       schedSec,
			SchedCPUSec:    schedCPUSec,
			CompactSec:     decision.CompactSeconds,
			Phase1Sec:      decision.Phase1Seconds,
			Phase2Sec:      decision.Phase2Seconds,
			PlaySec:        playSec,
			CacheHits:      decision.PlanCacheHits,
			CacheMisses:    decision.PlanCacheMisses,
			Replayed:       decision.Replayed,
			Degraded:       decision.Degraded.Any(),
			DegradedReason: decision.Degraded.Reason(),
		}
		if stat.Degraded {
			res.DegradedSlots++
		}
		for _, d := range e.devices {
			anx := e.cfg.Anxiety.Anxiety(d.EnergyFrac())
			res.AnxietySum += anx
			res.AnxietySamples++
			stat.MeanAnxiety += anx
			stat.MeanEnergyFrac += d.EnergyFrac()
			if d.State == device.Watching {
				stat.Watching++
			}
		}
		for _, est := range e.estimators {
			stat.MeanGamma += est.Gamma()
		}
		if n := float64(len(e.devices)); n > 0 {
			stat.MeanAnxiety /= n
			stat.MeanEnergyFrac /= n
			stat.MeanGamma /= n
		}
		if e.cfg.FixedGamma > 0 {
			stat.MeanGamma = e.cfg.FixedGamma
		}
		res.Timeline = append(res.Timeline, stat)
		res.SlotsRun++
		sloTotal++
		if stat.SchedSec > sloLatency.Seconds() {
			sloSlow++
		}
		if stat.Degraded {
			sloDegraded++
		}
		sloClock = time.Unix(0, 0).Add(time.Duration(slot+1) * slotDur)
		// Sample history on the advanced clock before evaluating, so a
		// bundle captured by this Evaluate covers the slot that
		// triggered the alarm.
		if flightHist != nil {
			flightLive.observe(e, stat)
			flightHist.Sample()
		}
		sloEng.Evaluate()
		slotSp.SetInt("watching", stat.Watching)
		slotSp.SetInt("selected", stat.Selected)
		slotSp.End()
		if e.cfg.Progress != nil {
			e.cfg.Progress(e.policy.Name(), stat)
		}
	}

	res.SLO = sloEng.Snapshot()
	if flightRec != nil {
		res.FlightBundles = int(flightRec.BundlesWritten())
	}
	e.nextSlot = endSlot

	if endSlot < e.cfg.Slots {
		// Partial run (Config.StopAfter): stream finalisation and the
		// final per-device fills wait for the resuming process; the
		// caller checkpoints the emulator now (Checkpoint).
		return res, nil
	}
	for i, d := range e.devices {
		d.FinishStream()
		res.FinalState[i] = d.State
		res.TPVMin[i] = d.WatchedSec / 60
	}
	return res, nil
}

// predictEnergies evaluates the scheduler's own energy model per
// request: the compacted forecast of the end-of-slot battery fraction
// (Eq. (12) applied over the *available* chunk window, with the
// transformed power rate for selected devices). The gap against reality
// comes from the gamma estimate, from the unavailable chunk tail, and
// from content the aggregate statistics miss.
func (e *Emulator) predictEnergies(reqs []scheduler.Request, dec scheduler.Decision) []float64 {
	out := make([]float64, len(reqs))
	for k := range reqs {
		r := &reqs[k]
		selected := dec.Transform[r.DeviceID]
		energy := r.EnergyFrac
		for _, c := range r.Chunks {
			watts, err := video.PowerRate(r.Display, c)
			if err != nil {
				panic(fmt.Sprintf("emu: predict: %v", err))
			}
			if selected {
				watts *= r.Gamma
			}
			energy -= (watts + r.BasePowerW) * c.DurationSec / r.BatteryCapacityJ
		}
		if energy < 0 {
			energy = 0
		}
		out[k] = energy
	}
	return out
}

// slotWindows returns every stream's chunk window for the slot.
func (e *Emulator) slotWindows(slot int) [][]video.Chunk {
	chunksPerSlot := int(e.cfg.SlotSec / e.cfg.ChunkSec)
	windows := make([][]video.Chunk, len(e.streams))
	for s, stream := range e.streams {
		lo := slot * chunksPerSlot
		hi := lo + chunksPerSlot
		if hi > len(stream.Chunks) {
			hi = len(stream.Chunks)
		}
		if lo > hi {
			lo = hi
		}
		windows[s] = stream.Chunks[lo:hi]
	}
	return windows
}

// SnapshotRequests returns the information-gathering output for the
// first slot without running the emulation — used by scheduler-only
// experiments such as the Fig. 10 runtime scaling.
func (e *Emulator) SnapshotRequests() ([]scheduler.Request, error) {
	reqs, _ := e.gatherRequests(e.slotWindows(0))
	return reqs, nil
}

// gatherRequests performs the information-gathering step for one slot:
// every still-watching device reports its display, energy status and the
// chunk window of its stream available at the edge.
func (e *Emulator) gatherRequests(windows [][]video.Chunk) ([]scheduler.Request, []int) {
	var reqs []scheduler.Request
	var idx []int
	// Availability: with the LRU model the prefetcher fills the cache
	// (the transfer happened during the previous slot) and the cached
	// prefix is what every viewer of a stream sees; otherwise each
	// device draws from the probabilistic cache.
	lruAvail := make([]int, len(windows))
	if e.prefetcher != nil {
		e.prefetcher.StartSlot()
	}
	for s, window := range windows {
		lruAvail[s] = -1
		if e.prefetcher != nil {
			e.prefetcher.PrefetchWindow(e.streams[s].ID, window)
			lruAvail[s] = e.prefetcher.AvailablePrefix(e.streams[s].ID, window)
		}
	}
	for i, d := range e.devices {
		if d.State != device.Watching {
			continue
		}
		window := windows[e.deviceStream[i]]
		if len(window) == 0 {
			continue
		}
		avail := lruAvail[e.deviceStream[i]]
		if avail < 0 {
			avail = e.cache.AvailableChunks(e.cacheRNG, len(window))
		}
		if avail == 0 {
			// Nothing prefetched yet: the device still streams (from the
			// CDN through the edge) but cannot be power-estimated, so it
			// is not schedulable this slot.
			continue
		}
		gamma := e.cfg.FixedGamma
		if gamma == 0 {
			gamma = e.estimators[i].Gamma()
		}
		req := scheduler.Request{
			DeviceID:         d.ID,
			Display:          d.Display,
			EnergyFrac:       d.EnergyFrac(),
			BatteryCapacityJ: d.Battery.CapacityJ,
			BasePowerW:       d.BasePowerW,
			Chunks:           window[:avail],
			Gamma:            gamma,
		}
		if e.cfg.PersonalizedAnxiety {
			// The owner starts worrying roughly twice as early as they
			// quit; clamp into the model's valid range.
			warning := stats.Clamp(2*d.GiveUpFrac, 0.08, 0.6)
			personal, err := anxiety.NewRescaled(e.cfg.Anxiety, warning)
			if err == nil {
				req.Anxiety = personal
			}
		}
		reqs = append(reqs, req)
		idx = append(idx, i)
	}
	return reqs, idx
}

// playSlot plays the slot's full chunk window on every watching device,
// applying the transform to selected ones, draining batteries, and
// feeding realised savings back into the Bayesian estimators.
// frameTransform returns the memoised per-pixel transform of a chunk for
// a display type.
func (e *Emulator) frameTransform(streamIdx int, chunk video.Chunk, strat transform.Strategy, spec display.Spec) (transform.Result, error) {
	key := frameKey{stream: streamIdx, chunk: chunk.Index, oled: spec.Type == display.OLED}
	if cached, ok := e.frameCache[key]; ok {
		return cached, nil
	}
	fres, err := strat.ApplyFrame(spec, chunk.Keyframe, e.cfg.Tolerance)
	if err != nil {
		return transform.Result{}, err
	}
	if e.frameCache == nil {
		e.frameCache = make(map[frameKey]transform.Result)
	}
	e.frameCache[key] = fres.Result
	return fres.Result, nil
}

func (e *Emulator) playSlot(ctx context.Context, windows [][]video.Chunk, dec scheduler.Decision, reqIdx []int, res *RunResult) {
	_, psp := span.Child(ctx, "play")
	// The memo is per slot: chunk indexes repeat across slots only for
	// different content windows.
	e.frameCache = nil
	selected := make(map[int]bool, len(reqIdx))
	for _, i := range reqIdx {
		if dec.Transform[e.devices[i].ID] {
			selected[i] = true
			res.EverServed[i] = true
		}
	}
	// Realised reductions are collected during playback and applied to
	// the estimators in one batch afterwards (the Fig. 6 "Bayesian
	// updating" stage); nothing inside the playback loop reads them, so
	// the deferral changes no behaviour and gives the update its own
	// span.
	type observation struct {
		device int
		mean   float64
	}
	var observations []observation
	for _, i := range reqIdx {
		d := e.devices[i]
		window := windows[e.deviceStream[i]]
		savings := make([]float64, 0, len(window))
		for _, chunk := range window {
			if d.State != device.Watching {
				break
			}
			plainW, err := video.PowerRate(d.Display, chunk)
			if err != nil {
				// Generated content is always valid; a failure here is a
				// programming error.
				panic(fmt.Sprintf("emu: power rate: %v", err))
			}
			actualW := plainW
			quality := 0.0
			if selected[i] {
				strat := e.strategies[d.Display.Type == display.OLED]
				var tres transform.Result
				var err error
				if e.cfg.UseFrames && chunk.Keyframe != nil {
					tres, err = e.frameTransform(e.deviceStream[i], chunk, strat, d.Display)
				} else {
					tres, err = strat.Apply(d.Display, chunk.Stats, e.cfg.Tolerance)
				}
				if err != nil {
					panic(fmt.Sprintf("emu: transform: %v", err))
				}
				saving, err := transform.RealizedSaving(d.Display, chunk.Stats, tres)
				if err != nil {
					panic(fmt.Sprintf("emu: realized saving: %v", err))
				}
				actualW = plainW * (1 - saving)
				quality = tres.QualityLoss
				savings = append(savings, saving)
			}
			if e.cfg.AutoDimBelow > 0 && d.EnergyFrac() < e.cfg.AutoDimBelow {
				// OS power saver: uncompensated dimming scales the display
				// power roughly linearly and costs the full luminance drop
				// in perceived quality.
				actualW *= e.cfg.AutoDimFactor
				quality = stats.Clamp(quality+(1-e.cfg.AutoDimFactor), 0, 1)
			}
			watched := d.Watch(chunk.DurationSec, actualW)
			res.DisplayEnergyJ += actualW * watched
			res.UntransformedDisplayEnergyJ += plainW * watched
			if watched > 0 {
				res.QualityLossSum += quality
				res.QualityLossSamples++
				if quality > 0 {
					res.AffectedQualitySum += quality
					res.AffectedQualitySamples++
				}
			}
		}
		if len(savings) > 0 && e.cfg.FixedGamma == 0 {
			observations = append(observations, observation{device: i, mean: stats.Mean(savings)})
		}
	}
	psp.End()
	_, bsp := span.Child(ctx, "bayes-update")
	for _, o := range observations {
		// Observation Delta_n: the slot's mean realised reduction. A
		// degenerate observation (0 or 1) carries no information and
		// is deliberately skipped — the conjugate update assumes a
		// valid ratio.
		_ = e.estimators[o.device].Observe(o.mean)
	}
	bsp.SetInt("observations", len(observations))
	bsp.End()
}

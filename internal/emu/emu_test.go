package emu

import (
	"math"
	"testing"

	"lpvs/internal/device"
	"lpvs/internal/scheduler"
	"lpvs/internal/stats"
	"lpvs/internal/survey"
	"lpvs/internal/video"
)

func baseConfig() Config {
	return Config{
		Seed:          7,
		GroupSize:     40,
		Slots:         12,
		Lambda:        1,
		ServerStreams: -1, // sufficient capacity
		Genre:         video.Gaming,
	}
}

func mustCompare(tb testing.TB, cfg Config, policy scheduler.Policy) *Comparison {
	tb.Helper()
	c, err := Compare(cfg, policy)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

func toFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.GroupSize = 0 },
		func(c *Config) { c.Slots = 0 },
		func(c *Config) { c.SlotSec = -5 },
		func(c *Config) { c.ChunkSec = 400 }, // larger than slot
		func(c *Config) { c.Tolerance = 1.5 },
		func(c *Config) { c.FixedGamma = 1 },
		func(c *Config) { c.FixedGamma = -0.2 },
	}
	for i, mut := range bad {
		cfg := baseConfig()
		mut(&cfg)
		if _, err := New(cfg, nil); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunBasicInvariants(t *testing.T) {
	e, err := New(baseConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SlotsRun != 12 {
		t.Fatalf("slots run = %d, want 12", res.SlotsRun)
	}
	if res.Policy != "lpvs" {
		t.Fatalf("policy = %q", res.Policy)
	}
	if res.DisplayEnergyJ <= 0 || res.UntransformedDisplayEnergyJ < res.DisplayEnergyJ {
		t.Fatalf("energy accounting broken: actual %v untransformed %v",
			res.DisplayEnergyJ, res.UntransformedDisplayEnergyJ)
	}
	if res.AnxietySamples != 40*12 {
		t.Fatalf("anxiety samples = %d, want %d", res.AnxietySamples, 40*12)
	}
	if len(res.TPVMin) != 40 || len(res.SelectedPerSlot) != 12 {
		t.Fatal("result vector sizes wrong")
	}
	for i, tpv := range res.TPVMin {
		if tpv < 0 || tpv > 60.0+1e-9 { // 12 slots x 5 min
			t.Fatalf("device %d TPV %v outside [0, 60]", i, tpv)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := New(baseConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(baseConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ra.DisplayEnergyJ != rb.DisplayEnergyJ || ra.MeanAnxiety() != rb.MeanAnxiety() {
		t.Fatal("equal-seed runs diverged")
	}
	for i := range ra.TPVMin {
		if ra.TPVMin[i] != rb.TPVMin[i] {
			t.Fatalf("TPV for device %d differs", i)
		}
	}
}

func TestNoTransformSavesNothing(t *testing.T) {
	e, err := New(baseConfig(), scheduler.NoTransform{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergySavingRatio() != 0 {
		t.Fatalf("no-transform saved %v", res.EnergySavingRatio())
	}
	for slot, n := range res.SelectedPerSlot {
		if n != 0 {
			t.Fatalf("slot %d selected %d devices under no-transform", slot, n)
		}
	}
}

func TestLPVSSavesEnergyInPaperBand(t *testing.T) {
	c := mustCompare(t, baseConfig(), nil)
	saving := c.EnergySavingRatio()
	// Paper Fig. 7: average 35.2%, max 37.13% under sufficient capacity.
	if saving < 0.25 || saving > 0.45 {
		t.Fatalf("energy saving %v outside the plausible paper band [0.25, 0.45]", saving)
	}
}

func TestLPVSReducesAnxiety(t *testing.T) {
	c := mustCompare(t, baseConfig(), nil)
	red := c.AnxietyReduction()
	if red <= 0 {
		t.Fatalf("anxiety reduction %v, want positive", red)
	}
	if red > 0.3 {
		t.Fatalf("anxiety reduction %v implausibly large", red)
	}
}

func TestLPVSExtendsLowBatteryTPV(t *testing.T) {
	cfg := baseConfig()
	cfg.Slots = 48
	cfg.GroupSize = 60
	ds := survey.Generate(survey.DefaultConfig())
	cfg.Device.GiveUpSampler = SurveyGiveUpSampler(ds)
	c := mustCompare(t, cfg, nil)
	base, treated, gain := c.TPVGain()
	if c.CohortSize() == 0 {
		t.Fatal("empty low-battery cohort")
	}
	if treated <= base {
		t.Fatalf("LPVS did not extend watching: %v vs %v", treated, base)
	}
	if gain < 0.10 {
		t.Fatalf("TPV gain %v, want at least 10%%", gain)
	}
}

func TestLimitedCapacityReducesSaving(t *testing.T) {
	plentiful := baseConfig()
	plentiful.GroupSize = 120
	plentiful.ServerStreams = 200

	starved := plentiful
	starved.ServerStreams = 20

	cp := mustCompare(t, plentiful, nil)
	cs := mustCompare(t, starved, nil)
	if cs.EnergySavingRatio() >= cp.EnergySavingRatio() {
		t.Fatalf("starved capacity (%v) should save less than plentiful (%v)",
			cs.EnergySavingRatio(), cp.EnergySavingRatio())
	}
	// Capacity is denominated in 720p units, so cheap 480p or partially
	// cached streams can push the count above 20 — but nowhere near the
	// whole cluster.
	for slot, n := range cs.Treated.SelectedPerSlot {
		if n > 60 {
			t.Fatalf("slot %d transformed %d streams on a 20-unit server", slot, n)
		}
	}
	meanStarved := stats.Mean(toFloats(cs.Treated.SelectedPerSlot))
	meanPlenty := stats.Mean(toFloats(cp.Treated.SelectedPerSlot))
	if meanStarved >= meanPlenty {
		t.Fatalf("starved server selected %v per slot vs plentiful %v", meanStarved, meanPlenty)
	}
}

func TestLambdaShiftsSelectionTowardAnxious(t *testing.T) {
	// Under limited capacity, higher lambda must not reduce the anxiety
	// reduction.
	mk := func(lambda float64) *Comparison {
		cfg := baseConfig()
		cfg.GroupSize = 90
		cfg.ServerStreams = 25
		cfg.Slots = 18
		cfg.Lambda = lambda
		return mustCompare(t, cfg, nil)
	}
	lo := mk(0)
	hi := mk(8)
	if hi.AnxietyReduction() < lo.AnxietyReduction()-0.005 {
		t.Fatalf("lambda=8 anxiety reduction %v below lambda=0 %v",
			hi.AnxietyReduction(), lo.AnxietyReduction())
	}
}

func TestFixedGammaAblationRuns(t *testing.T) {
	cfg := baseConfig()
	cfg.FixedGamma = 0.31
	c := mustCompare(t, cfg, nil)
	if c.EnergySavingRatio() <= 0 {
		t.Fatal("fixed-gamma run saved nothing")
	}
}

func TestBaselinePoliciesRun(t *testing.T) {
	cfg := baseConfig()
	cfg.GroupSize = 50
	cfg.ServerStreams = 15
	scfg, err := SchedulerConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := scheduler.NewRandomPolicy(scfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := scheduler.NewGreedyBatteryPolicy(scfg)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := scheduler.NewJointKnapsackPolicy(scfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []scheduler.Policy{rnd, gb, joint} {
		c := mustCompare(t, cfg, p)
		if c.Treated.Policy != p.Name() {
			t.Fatalf("policy name mismatch: %q vs %q", c.Treated.Policy, p.Name())
		}
		if c.EnergySavingRatio() <= 0 {
			t.Fatalf("%s saved nothing", p.Name())
		}
	}
}

func TestLPVSBeatsRandomOnObjectiveMetrics(t *testing.T) {
	cfg := baseConfig()
	cfg.GroupSize = 100
	cfg.ServerStreams = 25
	cfg.Slots = 18

	lp := mustCompare(t, cfg, nil)
	scfg, err := SchedulerConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := scheduler.NewRandomPolicy(scfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	rd := mustCompare(t, cfg, rnd)
	if lp.EnergySavingRatio() <= rd.EnergySavingRatio() {
		t.Fatalf("LPVS energy saving %v does not beat random %v",
			lp.EnergySavingRatio(), rd.EnergySavingRatio())
	}
}

func TestGammaLearningImprovesEstimates(t *testing.T) {
	cfg := baseConfig()
	cfg.Slots = 20
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]float64, len(e.estimators))
	for i, est := range e.estimators {
		before[i] = est.Uncertainty()
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tightened := 0
	for i, est := range e.estimators {
		if est.Observations() > 0 && est.Uncertainty() < before[i] {
			tightened++
		}
	}
	if tightened < len(e.estimators)/2 {
		t.Fatalf("only %d of %d estimators learned anything", tightened, len(e.estimators))
	}
}

func TestDeadClusterStopsScheduling(t *testing.T) {
	cfg := baseConfig()
	cfg.Device = device.DefaultGenConfig()
	cfg.Device.InitMean = 0.03 // nearly dead fleet
	cfg.Device.InitStd = 0.001
	cfg.Device.GiveUpSampler = func(*stats.RNG) float64 { return 0 }
	cfg.Slots = 30
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// All devices drain out; later slots must select nothing.
	last := res.SelectedPerSlot[len(res.SelectedPerSlot)-1]
	if last != 0 {
		t.Fatalf("dead cluster still scheduling %d devices", last)
	}
	dead := 0
	for _, s := range res.FinalState {
		if s == device.BatteryDead {
			dead++
		}
	}
	if dead < cfg.GroupSize/2 {
		t.Fatalf("only %d devices died in a near-dead fleet", dead)
	}
}

func TestZeroCapacityServer(t *testing.T) {
	cfg := baseConfig()
	cfg.ServerStreams = 0
	c := mustCompare(t, cfg, nil)
	if c.EnergySavingRatio() != 0 {
		t.Fatalf("zero-capacity edge saved %v", c.EnergySavingRatio())
	}
}

func TestSurveyGiveUpSampler(t *testing.T) {
	ds := survey.Generate(survey.DefaultConfig())
	sampler := SurveyGiveUpSampler(ds)
	if sampler == nil {
		t.Fatal("nil sampler for populated dataset")
	}
	rng := stats.NewRNG(1)
	for i := 0; i < 200; i++ {
		v := sampler(rng)
		if v < 0.01 || v > 1 {
			t.Fatalf("sampled give-up %v outside (0, 1]", v)
		}
	}
	if SurveyGiveUpSampler(&survey.Dataset{}) != nil {
		t.Fatal("empty dataset must yield nil sampler")
	}
}

func TestEnergySavingRatioEdgeCases(t *testing.T) {
	r := &RunResult{}
	if r.EnergySavingRatio() != 0 || r.MeanAnxiety() != 0 {
		t.Fatal("zero-value result must report zeros")
	}
	if r.MeanTPVMin(nil) != 0 {
		t.Fatal("empty TPV mean")
	}
	if got := (&RunResult{TPVMin: []float64{2, 4}}).MeanTPVMin(nil); math.Abs(got-3) > 1e-12 {
		t.Fatalf("TPV mean = %v, want 3", got)
	}
}

func TestTimelineRecorded(t *testing.T) {
	e, err := New(baseConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != res.SlotsRun {
		t.Fatalf("timeline %d entries for %d slots", len(res.Timeline), res.SlotsRun)
	}
	for i, st := range res.Timeline {
		if st.Slot != i {
			t.Fatalf("slot index %d at position %d", st.Slot, i)
		}
		if st.MeanEnergyFrac < 0 || st.MeanEnergyFrac > 1 || st.MeanAnxiety < 0 || st.MeanAnxiety > 1 {
			t.Fatalf("bad aggregates %+v", st)
		}
		if st.Watching < 0 || st.Watching > 40 {
			t.Fatalf("watching %d", st.Watching)
		}
	}
	// Batteries only drain: mean energy is non-increasing.
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].MeanEnergyFrac > res.Timeline[i-1].MeanEnergyFrac+1e-9 {
			t.Fatal("mean energy increased across slots")
		}
	}
}

func TestEnergyForecastAccurate(t *testing.T) {
	// The scheduler's compacted energy model must track reality closely:
	// with a perfect cache (full windows) and learned gamma, the forecast
	// error should be well under one battery percent.
	cfg := baseConfig()
	cfg.Slots = 16
	cfg.CacheHitRatio = 1
	cfg.CacheMinPrefix = 0.99
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PredErrSamples == 0 {
		t.Fatal("no forecast samples")
	}
	if mae := res.MeanEnergyPredictionError(); mae > 0.01 {
		t.Fatalf("forecast error %v battery fraction, want < 0.01", mae)
	}
}

func TestEnergyForecastDegradesWithPartialWindows(t *testing.T) {
	run := func(hit float64) float64 {
		cfg := baseConfig()
		cfg.Slots = 16
		cfg.CacheHitRatio = hit
		cfg.CacheMinPrefix = 0.2
		e, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanEnergyPredictionError()
	}
	full := run(0.999)
	starved := run(0.01)
	if starved <= full {
		t.Fatalf("partial windows (%v) should hurt forecasts vs full (%v)", starved, full)
	}
}

func TestAutoDimSavesEnergyWithQualityCost(t *testing.T) {
	cfg := baseConfig()
	cfg.Slots = 24
	cfg.Device.GiveUpSampler = func(*stats.RNG) float64 { return 0.01 }
	cfg.AutoDimBelow = 0.5 // dim half the fleet from the start
	e, err := New(cfg, scheduler.NoTransform{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergySavingRatio() <= 0 {
		t.Fatal("auto-dim saved nothing")
	}
	if res.MeanAffectedQualityLoss() < 0.3 {
		t.Fatalf("uncompensated dimming should cost heavy quality, got %v",
			res.MeanAffectedQualityLoss())
	}
	// Validation.
	bad := baseConfig()
	bad.AutoDimBelow = 1.5
	if _, err := New(bad, nil); err == nil {
		t.Fatal("bad threshold accepted")
	}
	bad = baseConfig()
	bad.AutoDimBelow = 0.2
	bad.AutoDimFactor = 2
	if _, err := New(bad, nil); err == nil {
		t.Fatal("bad factor accepted")
	}
}

func TestLPVSQualityLossBounded(t *testing.T) {
	c := mustCompare(t, baseConfig(), nil)
	q := c.Treated.MeanAffectedQualityLoss()
	if q <= 0 || q > 0.3 {
		t.Fatalf("LPVS per-chunk quality loss %v outside (0, 0.3]", q)
	}
	if c.Baseline.MeanQualityLoss() != 0 {
		t.Fatal("baseline run recorded quality loss")
	}
}

func TestPersonalizedAnxietyRuns(t *testing.T) {
	cfg := baseConfig()
	cfg.PersonalizedAnxiety = true
	cfg.GroupSize = 80
	cfg.ServerStreams = 20 // constrained, so the curves matter
	cfg.Lambda = 5
	c := mustCompare(t, cfg, nil)
	if c.EnergySavingRatio() <= 0 {
		t.Fatal("personalized run saved nothing")
	}
	if c.AnxietyReduction() <= 0 {
		t.Fatal("personalized run reduced no anxiety")
	}
	// Personalization is deterministic.
	c2 := mustCompare(t, cfg, nil)
	if c.EnergySavingRatio() != c2.EnergySavingRatio() {
		t.Fatal("personalized runs diverged")
	}
}

func TestMultiStreamCluster(t *testing.T) {
	cfg := baseConfig()
	cfg.Streams = 4
	c := mustCompare(t, cfg, nil)
	if c.EnergySavingRatio() <= 0.1 {
		t.Fatalf("multi-stream VC saved only %v", c.EnergySavingRatio())
	}
	// Validation: more streams than devices is rejected.
	bad := baseConfig()
	bad.GroupSize = 3
	bad.Streams = 5
	if _, err := New(bad, nil); err == nil {
		t.Fatal("streams > devices accepted")
	}
	bad = baseConfig()
	bad.Streams = -1
	if _, err := New(bad, nil); err == nil {
		t.Fatal("negative streams accepted")
	}
}

func TestMultiStreamDeterministic(t *testing.T) {
	cfg := baseConfig()
	cfg.Streams = 3
	a := mustCompare(t, cfg, nil)
	b := mustCompare(t, cfg, nil)
	if a.EnergySavingRatio() != b.EnergySavingRatio() {
		t.Fatal("multi-stream runs diverged")
	}
}

func TestPerPixelEngine(t *testing.T) {
	cfg := baseConfig()
	cfg.UseFrames = true
	c := mustCompare(t, cfg, nil)
	saving := c.EnergySavingRatio()
	if saving <= 0.1 {
		t.Fatalf("per-pixel engine saved only %v", saving)
	}
	// The aggregate engine is calibrated to approximate the per-pixel
	// one; their cluster-level savings should land in the same band.
	agg := mustCompare(t, baseConfig(), nil)
	if saving < 0.5*agg.EnergySavingRatio() || saving > 2*agg.EnergySavingRatio() {
		t.Fatalf("engines diverge: per-pixel %v vs aggregate %v", saving, agg.EnergySavingRatio())
	}
}

func TestLRUPrefetchModel(t *testing.T) {
	cfg := baseConfig()
	cfg.LRUCacheMB = 2000
	cfg.PrefetchMBPerSlot = 400 // enough for ~4 concurrent windows
	c := mustCompare(t, cfg, nil)
	if c.EnergySavingRatio() <= 0 {
		t.Fatal("LRU-prefetch emulation saved nothing")
	}
	// Config validation: the two knobs come together.
	bad := baseConfig()
	bad.LRUCacheMB = 100
	if _, err := New(bad, nil); err == nil {
		t.Fatal("LRUCacheMB without PrefetchMBPerSlot accepted")
	}
	bad = baseConfig()
	bad.LRUCacheMB = -1
	bad.PrefetchMBPerSlot = -1
	if _, err := New(bad, nil); err == nil {
		t.Fatal("negative LRU knobs accepted")
	}
}

func TestLRUStarvedPrefetchScheduleLess(t *testing.T) {
	// With a tiny prefetch budget the available prefix stays short, so
	// the scheduler sees fewer chunks but the pipeline still works.
	cfg := baseConfig()
	cfg.LRUCacheMB = 2000
	cfg.PrefetchMBPerSlot = 8 // ~2 chunks per slot across the stream
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SlotsRun != cfg.Slots {
		t.Fatal("run aborted")
	}
}

func TestSoakAllFeaturesTogether(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// Everything at once: multi-stream VC, LRU prefetch, per-pixel
	// engine, personalized anxiety, constrained capacity, 90-minute stream.
	cfg := Config{
		Seed:                42,
		GroupSize:           100,
		Slots:               18,
		Lambda:              3,
		ServerStreams:       40,
		Streams:             4,
		LRUCacheMB:          8000,
		PrefetchMBPerSlot:   3000,
		UseFrames:           true,
		PersonalizedAnxiety: true,
	}
	c, err := Compare(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Treated.SlotsRun != 18 {
		t.Fatal("soak run aborted")
	}
	if c.EnergySavingRatio() <= 0.05 {
		t.Fatalf("soak saving %v", c.EnergySavingRatio())
	}
	if c.AnxietyReduction() <= 0 {
		t.Fatalf("soak anxiety reduction %v", c.AnxietyReduction())
	}
}

func TestCacheAffectsRequests(t *testing.T) {
	cfg := baseConfig()
	cfg.CacheHitRatio = 0.01
	cfg.CacheMinPrefix = 0.2
	c := mustCompare(t, cfg, nil)
	// With mostly-partial windows everything still works and saves
	// energy (playback covers the full window regardless of what the
	// scheduler saw).
	if c.EnergySavingRatio() <= 0 {
		t.Fatal("partial cache broke the pipeline")
	}
}

package emu

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"lpvs/internal/bayes"
	"lpvs/internal/device"
	"lpvs/internal/obs/audit"
	"lpvs/internal/persist"
	"lpvs/internal/stats"
	"lpvs/internal/video"
)

// Checkpoint freezes the emulator after a partial Run (Config.StopAfter)
// into a persistable record (durable state, DESIGN.md §14). The
// checkpoint carries everything the loop threads between slots — the
// fleet's full static and dynamic state, the Bayesian posteriors, the
// edge-cache sampling stream's exact position, and the accumulated
// partial result — so a resuming process finishes with results
// identical to an uninterrupted run (modulo wall-clock timings and the
// restarted SLO windows).
//
// res must be the RunResult the partial Run returned. Configurations
// using the LRU prefetch model refuse to checkpoint: the cache's
// contents are not captured.
func (e *Emulator) Checkpoint(res *RunResult) (*persist.EmuCheckpoint, error) {
	if e.prefetcher != nil {
		return nil, fmt.Errorf("emu: LRU prefetch cache contents are not checkpointable")
	}
	if res == nil || res.SlotsRun != e.nextSlot {
		got := -1
		if res != nil {
			got = res.SlotsRun
		}
		return nil, fmt.Errorf("emu: checkpoint result ran %d slots, emulator is at slot %d", got, e.nextSlot)
	}
	hash, err := e.configHash()
	if err != nil {
		return nil, err
	}
	ck := &persist.EmuCheckpoint{ConfigHash: hash, NextSlot: e.nextSlot}
	for i, d := range e.devices {
		ck.Devices = append(ck.Devices, persist.EmuDevice{
			ID:         d.ID,
			Display:    d.Display,
			CapacityJ:  d.Battery.CapacityJ,
			LevelJ:     d.Battery.LevelJ,
			BasePowerW: d.BasePowerW,
			GiveUpFrac: d.GiveUpFrac,
			State:      int(d.State),
			WatchedSec: d.WatchedSec,
			Estimator:  e.estimators[i].Snapshot(),
		})
	}
	seed, draws := e.cacheRNG.State()
	ck.CacheRNG = persist.RNGState{Seed: seed, Draws: draws}
	blob, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("emu: checkpoint result: %w", err)
	}
	ck.Result = blob
	return ck, nil
}

// Restore rewinds a freshly built emulator to a checkpoint taken by an
// identically configured run (enforced through the config hash), so
// the next Run continues from the checkpointed slot. It must be called
// before Run. Validation is all-or-nothing: nothing is mutated until
// every entry has been checked, so a rejected checkpoint leaves the
// emulator cold-startable.
func (e *Emulator) Restore(ck *persist.EmuCheckpoint) error {
	if e.nextSlot != 0 || e.resume != nil {
		return fmt.Errorf("emu: Restore on an already-run emulator")
	}
	hash, err := e.configHash()
	if err != nil {
		return err
	}
	if ck.ConfigHash != hash {
		return fmt.Errorf("emu: checkpoint config hash %s does not match this run's %s; cold-start instead",
			ck.ConfigHash, hash)
	}
	if ck.NextSlot < 0 || ck.NextSlot > e.cfg.Slots {
		return fmt.Errorf("emu: checkpoint slot %d outside [0, %d]", ck.NextSlot, e.cfg.Slots)
	}
	if len(ck.Devices) != len(e.devices) {
		return fmt.Errorf("emu: checkpoint has %d devices, fleet has %d", len(ck.Devices), len(e.devices))
	}
	ests := make([]*bayes.GammaEstimator, len(ck.Devices))
	for i := range ck.Devices {
		cd := &ck.Devices[i]
		if cd.ID != e.devices[i].ID {
			return fmt.Errorf("emu: checkpoint device %d is %q, fleet has %q", i, cd.ID, e.devices[i].ID)
		}
		if err := cd.Display.Validate(); err != nil {
			return fmt.Errorf("emu: checkpoint device %q: %w", cd.ID, err)
		}
		if cd.State < int(device.Watching) || cd.State > int(device.Finished) {
			return fmt.Errorf("emu: checkpoint device %q state %d", cd.ID, cd.State)
		}
		if cd.CapacityJ <= 0 || cd.LevelJ < 0 || cd.LevelJ > cd.CapacityJ || cd.WatchedSec < 0 {
			return fmt.Errorf("emu: checkpoint device %q battery/watch state", cd.ID)
		}
		ests[i], err = bayes.FromSnapshot(cd.Estimator)
		if err != nil {
			return fmt.Errorf("emu: checkpoint device %q: %w", cd.ID, err)
		}
	}
	var res RunResult
	if err := json.Unmarshal(ck.Result, &res); err != nil {
		return fmt.Errorf("emu: checkpoint result: %w", err)
	}
	if res.SlotsRun != ck.NextSlot {
		return fmt.Errorf("emu: checkpoint result ran %d slots, checkpoint is at slot %d", res.SlotsRun, ck.NextSlot)
	}
	n := len(e.devices)
	if len(res.TPVMin) != n || len(res.LowBatteryStart) != n || len(res.EverServed) != n ||
		len(res.FinalState) != n || len(res.SelectedPerSlot) != ck.NextSlot || len(res.Timeline) != ck.NextSlot {
		return fmt.Errorf("emu: checkpoint result arrays do not match %d devices / %d slots", n, ck.NextSlot)
	}
	for i := range ck.Devices {
		cd := &ck.Devices[i]
		d := e.devices[i]
		d.Display = cd.Display
		d.Battery = device.Battery{CapacityJ: cd.CapacityJ, LevelJ: cd.LevelJ}
		d.BasePowerW = cd.BasePowerW
		d.GiveUpFrac = cd.GiveUpFrac
		d.State = device.State(cd.State)
		d.WatchedSec = cd.WatchedSec
		e.estimators[i] = ests[i]
	}
	e.cacheRNG = stats.RestoreRNG(ck.CacheRNG.Seed, ck.CacheRNG.Draws)
	e.nextSlot = ck.NextSlot
	e.resume = &res
	return nil
}

// configHash fingerprints the workload-defining configuration: every
// field that shapes the generated streams, the per-slot decision
// problems, or the playback physics. Excluded on purpose: Device (the
// fleet travels inside the checkpoint, making resume independent of
// the unhashable survey sampler func), Workers and DisableIncremental
// (proven decision-neutral), SchedDeadline (degraded slots are
// wall-clock-dependent on any machine), StopAfter (the whole point of
// a checkpoint is that it differs), and the observation-only knobs
// (Progress, AuditDir, SLOSlotLatency, Tracer).
func (e *Emulator) configHash() (string, error) {
	c := e.cfg
	anx := audit.NewAnxietyRecord(c.Anxiety)
	if anx.Kind == "custom" {
		return "", fmt.Errorf("emu: anxiety model %T is not checkpointable", c.Anxiety)
	}
	h := struct {
		Seed                int64
		GroupSize           int
		Slots               int
		Lambda              float64
		ServerStreams       int
		Genre               video.Genre
		Streams             int
		SlotSec             float64
		ChunkSec            float64
		Tolerance           float64
		Anxiety             audit.AnxietyRecord
		CacheHitRatio       float64
		CacheMinPrefix      float64
		LRUCacheMB          float64
		PrefetchMBPerSlot   float64
		DisableSwap         bool
		FixedGamma          float64
		UseFrames           bool
		AutoDimBelow        float64
		AutoDimFactor       float64
		PersonalizedAnxiety bool
		ExactThreshold      int
	}{
		Seed:                c.Seed,
		GroupSize:           c.GroupSize,
		Slots:               c.Slots,
		Lambda:              c.Lambda,
		ServerStreams:       c.ServerStreams,
		Genre:               c.Genre,
		Streams:             c.Streams,
		SlotSec:             c.SlotSec,
		ChunkSec:            c.ChunkSec,
		Tolerance:           c.Tolerance,
		Anxiety:             anx,
		CacheHitRatio:       c.CacheHitRatio,
		CacheMinPrefix:      c.CacheMinPrefix,
		LRUCacheMB:          c.LRUCacheMB,
		PrefetchMBPerSlot:   c.PrefetchMBPerSlot,
		DisableSwap:         c.DisableSwap,
		FixedGamma:          c.FixedGamma,
		UseFrames:           c.UseFrames,
		AutoDimBelow:        c.AutoDimBelow,
		AutoDimFactor:       c.AutoDimFactor,
		PersonalizedAnxiety: c.PersonalizedAnxiety,
		ExactThreshold:      c.ExactThreshold,
	}
	b, err := json.Marshal(h)
	if err != nil {
		return "", fmt.Errorf("emu: config hash: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

package emu

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunResultJSONRoundTrip(t *testing.T) {
	e, err := New(baseConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRunResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.EnergySavingRatio() != res.EnergySavingRatio() {
		t.Fatal("saving changed in round trip")
	}
	if back.MeanAnxiety() != res.MeanAnxiety() {
		t.Fatal("anxiety changed in round trip")
	}
	if len(back.TPVMin) != len(res.TPVMin) {
		t.Fatal("fleet size changed")
	}
}

func TestComparisonJSONRoundTrip(t *testing.T) {
	c := mustCompare(t, baseConfig(), nil)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadComparison(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.AnxietyReduction() != c.AnxietyReduction() {
		t.Fatal("anxiety reduction changed")
	}
	b1, t1, _ := c.TPVGain()
	b2, t2, _ := back.TPVGain()
	if b1 != b2 || t1 != t2 {
		t.Fatal("TPV changed")
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	e, err := New(baseConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteTimelineCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != res.SlotsRun+1 {
		t.Fatalf("lines = %d, want %d", len(lines), res.SlotsRun+1)
	}
	if !strings.HasPrefix(lines[0], "slot,watching,selected") {
		t.Fatalf("header %q", lines[0])
	}
}

func TestReadRunResultRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{broken`,
		`{"Policy":"","SlotsRun":0}`,
		`{"Policy":"lpvs","SlotsRun":2,"SelectedPerSlot":[1],"TPVMin":[],"LowBatteryStart":[],"EverServed":[],"FinalState":[]}`,
		`{"Policy":"lpvs","SlotsRun":0,"SelectedPerSlot":[],"TPVMin":[1],"LowBatteryStart":[],"EverServed":[],"FinalState":[]}`,
		`{"Policy":"lpvs","SlotsRun":0,"SelectedPerSlot":[],"TPVMin":[],"LowBatteryStart":[],"EverServed":[],"FinalState":[],"DisplayEnergyJ":5,"UntransformedDisplayEnergyJ":1}`,
	}
	for i, data := range cases {
		if _, err := ReadRunResult(strings.NewReader(data)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadComparisonRejectsCorrupt(t *testing.T) {
	if _, err := ReadComparison(strings.NewReader(`{"Treated":null,"Baseline":null}`)); err == nil {
		t.Fatal("nil runs accepted")
	}
	if _, err := ReadComparison(strings.NewReader(`{broken`)); err == nil {
		t.Fatal("broken JSON accepted")
	}
}

package emu

import (
	"path/filepath"
	"reflect"
	"testing"

	"lpvs/internal/obs/slo"
	"lpvs/internal/persist"
)

// normalizeResult zeroes the fields a kill-and-resume legitimately
// changes: wall-clock timings (machine noise either way) and the SLO
// burn-rate windows, which restart with the resuming process
// (observation-only state; documented in DESIGN.md §14). Everything
// else must be bit-identical.
func normalizeResult(r *RunResult) *RunResult {
	c := *r
	c.SchedSeconds = 0
	c.SchedCPUSeconds = 0
	c.SLO = nil
	c.SLOAlarms = 0
	c.Timeline = append([]SlotStat(nil), r.Timeline...)
	for i := range c.Timeline {
		st := &c.Timeline[i]
		st.SchedSec = 0
		st.SchedCPUSec = 0
		st.CompactSec = 0
		st.Phase1Sec = 0
		st.Phase2Sec = 0
		st.PlaySec = 0
	}
	return &c
}

// runInterrupted runs cfg to stopAfter slots, checkpoints, then
// resumes in a brand-new emulator and finishes the run — the in-process
// equivalent of kill -9 between two lpvs-emu invocations, including
// the file round trip.
func runInterrupted(t *testing.T, cfg Config, stopAfter int) *RunResult {
	t.Helper()
	partialCfg := cfg
	partialCfg.StopAfter = stopAfter
	e1, err := New(partialCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := e1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if partial.SlotsRun != stopAfter {
		t.Fatalf("partial run did %d slots, want %d", partial.SlotsRun, stopAfter)
	}
	ck, err := e1.Checkpoint(partial)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.lpvs")
	if err := ck.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := persist.LoadEmuCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(loaded); err != nil {
		t.Fatal(err)
	}
	full, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	return full
}

// TestCheckpointResumeMatchesUninterrupted is the emulator's
// kill-and-restart differential: a run interrupted at any slot and
// resumed through the file round trip must finish with results
// identical (modulo timing/SLO normalization) to the uninterrupted
// run.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	cfg := baseConfig()
	cfg.ServerStreams = 12 // finite capacity exercises Phase-2 swaps
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, stopAfter := range []int{1, 5, cfg.Slots - 1} {
		got := runInterrupted(t, cfg, stopAfter)
		if !reflect.DeepEqual(normalizeResult(got), normalizeResult(want)) {
			t.Fatalf("resume after slot %d diverged from the uninterrupted run", stopAfter)
		}
	}
}

// TestCheckpointResumeIncrementalOff covers the serial cold path too.
func TestCheckpointResumeIncrementalOff(t *testing.T) {
	cfg := baseConfig()
	cfg.DisableIncremental = true
	cfg.Workers = 1
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := runInterrupted(t, cfg, 4)
	if !reflect.DeepEqual(normalizeResult(got), normalizeResult(want)) {
		t.Fatal("resume diverged with incremental disabled")
	}
}

// TestRestoreRejectsConfigMismatch: a checkpoint from a different
// workload must be refused, not silently diverge.
func TestRestoreRejectsConfigMismatch(t *testing.T) {
	cfg := baseConfig()
	cfg.StopAfter = 2
	e1, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := e1.Run()
	if err != nil {
		t.Fatal(err)
	}
	ck, err := e1.Checkpoint(partial)
	if err != nil {
		t.Fatal(err)
	}
	other := baseConfig()
	other.Lambda = 2
	e2, err := New(other, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(ck); err == nil {
		t.Fatal("restore accepted a checkpoint from a different config")
	}
	// The rejected emulator stays cold-startable.
	if _, err := e2.Run(); err != nil {
		t.Fatalf("emulator unusable after rejected restore: %v", err)
	}
}

// TestRestoreRejectsTamperedCheckpoint: structural damage to the
// device table fails closed.
func TestRestoreRejectsTamperedCheckpoint(t *testing.T) {
	cfg := baseConfig()
	cfg.StopAfter = 2
	e1, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := e1.Run()
	if err != nil {
		t.Fatal(err)
	}
	ck, err := e1.Checkpoint(partial)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*persist.EmuCheckpoint){
		"slot-out-of-range": func(c *persist.EmuCheckpoint) { c.NextSlot = cfg.Slots + 1 },
		"device-dropped":    func(c *persist.EmuCheckpoint) { c.Devices = c.Devices[1:] },
		"device-renamed":    func(c *persist.EmuCheckpoint) { c.Devices[0].ID = "impostor" },
		"battery-overfull":  func(c *persist.EmuCheckpoint) { c.Devices[0].LevelJ = c.Devices[0].CapacityJ + 1 },
		"bad-estimator":     func(c *persist.EmuCheckpoint) { c.Devices[0].Estimator.Sigma = -1 },
		"result-slot-skew":  func(c *persist.EmuCheckpoint) { c.NextSlot-- },
		"garbage-result":    func(c *persist.EmuCheckpoint) { c.Result = []byte("not json") },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			data := ck.Encode()
			bad, err := persist.DecodeEmuCheckpoint(data)
			if err != nil {
				t.Fatal(err)
			}
			mutate(bad)
			e2, err := New(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := e2.Restore(bad); err == nil {
				t.Fatal("tampered checkpoint accepted")
			}
		})
	}
}

// TestCheckpointRefusesLRUModel: the LRU prefetch cache's contents are
// not captured, so checkpointing under that model must refuse.
func TestCheckpointRefusesLRUModel(t *testing.T) {
	cfg := baseConfig()
	cfg.LRUCacheMB = 64
	cfg.PrefetchMBPerSlot = 16
	cfg.StopAfter = 2
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(partial); err == nil {
		t.Fatal("LRU-model checkpoint must refuse")
	}
}

// TestStopAfterValidation: StopAfter outside [0, Slots] is a config
// error, and a finished emulator refuses to run again.
func TestStopAfterValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.StopAfter = cfg.Slots + 1
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("StopAfter beyond Slots accepted")
	}
	cfg.StopAfter = -1
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("negative StopAfter accepted")
	}
	cfg = baseConfig()
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("second Run on a finished emulator must error")
	}
}

// TestPartialRunSLOWindows: a partial run still reports SLO states
// (they restart on resume but must exist in every returned result).
func TestPartialRunSLOWindows(t *testing.T) {
	cfg := baseConfig()
	cfg.StopAfter = 3
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SLO) == 0 {
		t.Fatal("partial run returned no SLO states")
	}
	var _ []slo.State = res.SLO
}

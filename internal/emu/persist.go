package emu

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON persists a run result, so long emulations can be archived
// and re-analysed without re-running.
func (r *RunResult) WriteJSON(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(r); err != nil {
		return fmt.Errorf("emu: encode result: %w", err)
	}
	return nil
}

// ReadRunResult loads a persisted run result and checks its internal
// consistency.
func ReadRunResult(r io.Reader) (*RunResult, error) {
	var res RunResult
	if err := json.NewDecoder(r).Decode(&res); err != nil {
		return nil, fmt.Errorf("emu: decode result: %w", err)
	}
	if err := res.validate(); err != nil {
		return nil, err
	}
	return &res, nil
}

func (r *RunResult) validate() error {
	if r.Policy == "" {
		return fmt.Errorf("emu: result without policy name")
	}
	n := len(r.TPVMin)
	if len(r.LowBatteryStart) != n || len(r.EverServed) != n || len(r.FinalState) != n {
		return fmt.Errorf("emu: per-device vectors disagree: %d/%d/%d/%d",
			n, len(r.LowBatteryStart), len(r.EverServed), len(r.FinalState))
	}
	if r.SlotsRun < 0 || len(r.SelectedPerSlot) != r.SlotsRun {
		return fmt.Errorf("emu: %d slot records for %d slots", len(r.SelectedPerSlot), r.SlotsRun)
	}
	if r.DisplayEnergyJ < 0 || r.UntransformedDisplayEnergyJ < r.DisplayEnergyJ {
		return fmt.Errorf("emu: inconsistent energy accounting")
	}
	return nil
}

// WriteTimelineCSV exports the run's per-slot aggregates as plot-ready
// CSV.
func (r *RunResult) WriteTimelineCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"slot", "watching", "selected", "mean_energy_frac", "mean_anxiety"}); err != nil {
		return fmt.Errorf("emu: timeline header: %w", err)
	}
	for _, st := range r.Timeline {
		row := []string{
			strconv.Itoa(st.Slot),
			strconv.Itoa(st.Watching),
			strconv.Itoa(st.Selected),
			strconv.FormatFloat(st.MeanEnergyFrac, 'f', 6, 64),
			strconv.FormatFloat(st.MeanAnxiety, 'f', 6, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("emu: timeline row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON persists a paired comparison.
func (c *Comparison) WriteJSON(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(c); err != nil {
		return fmt.Errorf("emu: encode comparison: %w", err)
	}
	return nil
}

// ReadComparison loads a persisted comparison.
func ReadComparison(r io.Reader) (*Comparison, error) {
	var c Comparison
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("emu: decode comparison: %w", err)
	}
	if c.Treated == nil || c.Baseline == nil {
		return nil, fmt.Errorf("emu: comparison missing a run")
	}
	if err := c.Treated.validate(); err != nil {
		return nil, err
	}
	if err := c.Baseline.validate(); err != nil {
		return nil, err
	}
	if len(c.Treated.TPVMin) != len(c.Baseline.TPVMin) {
		return nil, fmt.Errorf("emu: paired runs have different fleets")
	}
	return &c, nil
}

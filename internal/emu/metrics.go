package emu

import (
	"io"

	"lpvs/internal/obs"
)

// FillRegistry renders a finished run into an obs registry using the
// same metric vocabulary as the live edge daemon (lpvs_ticks_total,
// lpvs_tick_duration_seconds, the lpvs_sched_* phase histograms, ...),
// plus the run-level evaluation summaries of the paper's §VI. An
// emulation campaign's dump is therefore directly comparable with a
// scrape of a production lpvsd.
func (r *RunResult) FillRegistry(reg *obs.Registry) {
	reg.Counter("lpvs_ticks_total", "Scheduling ticks run.").Add(float64(r.SlotsRun))
	reg.Gauge("lpvs_devices", "Devices in the virtual cluster.").Set(float64(len(r.TPVMin)))

	tickDur := reg.Histogram("lpvs_tick_duration_seconds",
		"Wall time of one scheduling tick (information compacting + Phase-1 + Phase-2).", obs.DefBuckets())
	tickCPU := reg.Histogram("lpvs_sched_cpu_seconds",
		"CPU-sum of one scheduling tick across pool workers (equals wall time on the serial path).", obs.DefBuckets())
	compactDur := reg.Histogram("lpvs_sched_compact_seconds",
		"Information-compacting (plan building) time per tick.", obs.DefBuckets())
	phase1Dur := reg.Histogram("lpvs_sched_phase1_seconds",
		"Phase-1 knapsack solve time per tick.", obs.DefBuckets())
	phase2Dur := reg.Histogram("lpvs_sched_phase2_seconds",
		"Phase-2 anxiety-swap time per tick.", obs.DefBuckets())
	playDur := reg.Histogram("lpvs_emu_play_seconds",
		"Playback (battery-drain) emulation time per slot.", obs.DefBuckets())
	selected := reg.Histogram("lpvs_sched_selected_per_tick",
		"Devices selected for transforming per tick.", obs.ExpBuckets(1, 4, 8))
	swaps := reg.Counter("lpvs_sched_swaps_total", "Accepted Phase-2 anxiety swaps.")
	for _, st := range r.Timeline {
		tickDur.Observe(st.SchedSec)
		tickCPU.Observe(st.SchedCPUSec)
		compactDur.Observe(st.CompactSec)
		phase1Dur.Observe(st.Phase1Sec)
		phase2Dur.Observe(st.Phase2Sec)
		playDur.Observe(st.PlaySec)
		selected.Observe(float64(st.Selected))
		swaps.Add(float64(st.Swaps))
	}

	reg.Counter("lpvs_sched_seconds_total",
		"Cumulative scheduler wall time over the run.").Add(r.SchedSeconds)
	reg.Counter("lpvs_sched_cpu_seconds_total",
		"Cumulative scheduler CPU-sum across pool workers over the run.").Add(r.SchedCPUSeconds)
	reg.Counter("lpvs_display_energy_joules_total",
		"Display energy actually drawn across the cluster.").Add(r.DisplayEnergyJ)
	reg.Counter("lpvs_display_energy_untransformed_joules_total",
		"Display energy the same played content would have drawn untransformed.").Add(r.UntransformedDisplayEnergyJ)
	reg.Gauge("lpvs_energy_saving_ratio",
		"Display energy saving ratio of the run (paper Figs. 7/8a).").Set(r.EnergySavingRatio())
	reg.Gauge("lpvs_anxiety_mean",
		"Mean anxiety degree over device-slots (paper Figs. 7/8b input).").Set(r.MeanAnxiety())
	reg.Gauge("lpvs_quality_loss_mean",
		"Mean perceptual distortion per played chunk.").Set(r.MeanQualityLoss())
	reg.Gauge("lpvs_energy_prediction_error_mean",
		"Mean absolute error of the compacted energy forecast (battery fraction).").Set(r.MeanEnergyPredictionError())
	if n := len(r.Timeline); n > 0 {
		reg.Gauge("lpvs_gamma_mean",
			"Mean truncated-posterior gamma estimate across devices.").Set(r.Timeline[n-1].MeanGamma)
	}

	tpv := reg.Histogram("lpvs_tpv_minutes",
		"Watching time per viewer in minutes (paper Fig. 9).", obs.ExpBuckets(7.5, 2, 8))
	for _, min := range r.TPVMin {
		tpv.Observe(min)
	}
}

// liveMetrics mirrors a small slice of the shared metric vocabulary
// into a live registry slot by slot, so an armed flight recorder's
// history store (Config.FlightDir) has real counters, gauges, and
// histograms to sample on the synthetic clock — the same series names
// an operator would query on a live lpvsd.
type liveMetrics struct {
	ticks    *obs.Counter
	degraded *obs.Counter
	devices  *obs.Gauge
	watching *obs.Gauge
	selected *obs.Gauge
	anxiety  *obs.Gauge
	energy   *obs.Gauge
	gamma    *obs.Gauge
	tickDur  *obs.Histogram
}

func newLiveMetrics(reg *obs.Registry) *liveMetrics {
	return &liveMetrics{
		ticks:    reg.Counter("lpvs_ticks_total", "Scheduling ticks run."),
		degraded: reg.Counter("lpvs_sched_degraded_total", "Slots degraded to the anytime deadline shortcuts."),
		devices:  reg.Gauge("lpvs_devices", "Devices in the virtual cluster."),
		watching: reg.Gauge("lpvs_emu_watching", "Devices watching at the end of the slot."),
		selected: reg.Gauge("lpvs_sched_selected", "Devices selected for transforming in the last slot."),
		anxiety:  reg.Gauge("lpvs_anxiety_mean", "Mean anxiety degree across the cluster after the slot."),
		energy:   reg.Gauge("lpvs_energy_frac_mean", "Mean battery fraction across the cluster after the slot."),
		gamma:    reg.Gauge("lpvs_gamma_mean", "Mean truncated-posterior gamma estimate across devices."),
		tickDur: reg.Histogram("lpvs_tick_duration_seconds",
			"Wall time of one scheduling tick (information compacting + Phase-1 + Phase-2).", obs.DefBuckets()),
	}
}

func (m *liveMetrics) observe(e *Emulator, st SlotStat) {
	m.ticks.Inc()
	if st.Degraded {
		m.degraded.Inc()
	}
	m.devices.Set(float64(len(e.devices)))
	m.watching.Set(float64(st.Watching))
	m.selected.Set(float64(st.Selected))
	m.anxiety.Set(st.MeanAnxiety)
	m.energy.Set(st.MeanEnergyFrac)
	m.gamma.Set(st.MeanGamma)
	m.tickDur.Observe(st.SchedSec)
}

// WriteMetrics dumps the run summary in the Prometheus text exposition
// format — the shared observability vocabulary for emulation campaigns.
func (r *RunResult) WriteMetrics(w io.Writer) error {
	reg := obs.NewRegistry()
	r.FillRegistry(reg)
	return reg.WriteText(w)
}

package emu

import (
	"fmt"

	"lpvs/internal/anxiety"
	"lpvs/internal/scheduler"
	"lpvs/internal/stats"
	"lpvs/internal/survey"
)

// Comparison pairs a treated (LPVS or baseline-policy) run with a
// no-transform run of the identical workload: same seed, same fleet,
// same stream content, same cache draws. Every paper metric that needs a
// counterfactual (anxiety reduction, TPV gain) is derived from it.
type Comparison struct {
	Treated  *RunResult
	Baseline *RunResult
}

// Compare runs the policy and the no-transform baseline on the same
// workload. A nil policy means the LPVS scheduler from cfg.
func Compare(cfg Config, policy scheduler.Policy) (*Comparison, error) {
	treatedEmu, err := New(cfg, policy)
	if err != nil {
		return nil, err
	}
	treated, err := treatedEmu.Run()
	if err != nil {
		return nil, err
	}
	// The baseline is a counterfactual, not the system under
	// observation: it must not write audit records (it cannot — only
	// the LPVS scheduler carries the replayable record surface) and it
	// must not arm the flight recorder, whose deterministic synthetic-
	// clock filenames would otherwise overwrite the treated run's
	// bundles.
	baseCfg := cfg
	baseCfg.FlightDir = ""
	baseEmu, err := New(baseCfg, scheduler.NoTransform{})
	if err != nil {
		return nil, err
	}
	baseline, err := baseEmu.Run()
	if err != nil {
		return nil, err
	}
	if len(baseline.TPVMin) != len(treated.TPVMin) {
		return nil, fmt.Errorf("emu: paired runs diverged in fleet size")
	}
	return &Comparison{Treated: treated, Baseline: baseline}, nil
}

// EnergySavingRatio is the treated run's display-energy saving (the
// baseline's is zero by construction).
func (c *Comparison) EnergySavingRatio() float64 { return c.Treated.EnergySavingRatio() }

// AnxietyReduction is the Fig. 7/8b metric: relative decrease in the
// population mean anxiety versus the no-transform baseline.
func (c *Comparison) AnxietyReduction() float64 {
	return anxiety.Reduction(c.Baseline.MeanAnxiety(), c.Treated.MeanAnxiety())
}

// TPVGain computes the Fig. 9 metric over the paper's cohort: devices
// that started low-battery (energy in (0, 40%]) and were served by the
// treated policy at least once. It returns the baseline and treated mean
// watching minutes and the relative gain.
func (c *Comparison) TPVGain() (baseMin, treatedMin, gain float64) {
	cohort := func(i int) bool {
		return c.Treated.LowBatteryStart[i] && c.Treated.EverServed[i]
	}
	baseMin = c.Baseline.MeanTPVMin(cohort)
	treatedMin = c.Treated.MeanTPVMin(cohort)
	if baseMin > 0 {
		gain = (treatedMin - baseMin) / baseMin
	}
	return baseMin, treatedMin, gain
}

// CohortSize reports how many devices fall in the Fig. 9 cohort.
func (c *Comparison) CohortSize() int {
	n := 0
	for i := range c.Treated.TPVMin {
		if c.Treated.LowBatteryStart[i] && c.Treated.EverServed[i] {
			n++
		}
	}
	return n
}

// SurveyGiveUpSampler adapts a survey dataset's give-up answers into the
// device generator's sampler: each emulated owner draws a give-up
// threshold from the empirical answer distribution.
func SurveyGiveUpSampler(ds *survey.Dataset) func(*stats.RNG) float64 {
	answers := ds.GiveUpThresholds()
	if len(answers) == 0 {
		return nil
	}
	return func(rng *stats.RNG) float64 {
		return float64(answers[rng.Intn(len(answers))]) / 100
	}
}

package emu

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"lpvs/internal/obs/audit"
	"lpvs/internal/obs/slo"
	"lpvs/internal/obs/span"
	"lpvs/internal/scheduler"
)

// TestEmulatorAuditLogReplays runs a capacity-bound session with
// auditing on and replays every logged decision byte for byte — the
// same loop make audit-replay runs in CI.
func TestEmulatorAuditLogReplays(t *testing.T) {
	dir := t.TempDir()
	cfg := baseConfig()
	cfg.GroupSize = 12
	cfg.Slots = 5
	cfg.ServerStreams = 4 // scarce: forces capacity rejections into the log
	cfg.AuditDir = dir
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	recs, err := audit.ReadFile(filepath.Join(dir, audit.FileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != cfg.Slots {
		t.Fatalf("got %d audit records, want %d", len(recs), cfg.Slots)
	}
	for i, rec := range recs {
		if rec.Slot != i {
			t.Fatalf("record %d logged as slot %d", i, rec.Slot)
		}
		if rec.Seed != cfg.Seed {
			t.Fatalf("record %d seed = %d, want %d", i, rec.Seed, cfg.Seed)
		}
		if len(rec.Verdicts) != cfg.GroupSize {
			t.Fatalf("record %d: %d verdicts for %d devices", i, len(rec.Verdicts), cfg.GroupSize)
		}
	}
	diverged, err := audit.ReplayAll(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(diverged) != 0 {
		t.Fatalf("records %v diverged on replay", diverged)
	}
}

// TestEmulatorPooledAuditLogReplays covers the Workers>1 path, where
// decisions come from the sharded pool but must still replay serially.
func TestEmulatorPooledAuditLogReplays(t *testing.T) {
	dir := t.TempDir()
	cfg := baseConfig()
	cfg.GroupSize = 10
	cfg.Slots = 3
	cfg.Workers = 4
	cfg.AuditDir = dir
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	recs, err := audit.ReadFile(filepath.Join(dir, audit.FileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != cfg.Slots {
		t.Fatalf("got %d records, want %d", len(recs), cfg.Slots)
	}
	diverged, err := audit.ReplayAll(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(diverged) != 0 {
		t.Fatalf("pooled records %v diverged on replay", diverged)
	}
}

// TestBaselinePolicyWritesNoAudit: audit records promise deterministic
// replay through the LPVS scheduler, so baseline policies must not
// produce any.
func TestBaselinePolicyWritesNoAudit(t *testing.T) {
	dir := t.TempDir()
	cfg := baseConfig()
	cfg.GroupSize = 6
	cfg.Slots = 2
	cfg.AuditDir = dir
	e, err := New(cfg, scheduler.NoTransform{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, audit.FileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("baseline wrote %d audit bytes:\n%s", len(data), data)
	}
}

// TestEmulatorSpanTreeMatchesSlotPipeline asserts one emulated slot
// traces as slot -> gather/schedule/play/bayes-update with the
// scheduler stages nested under schedule -> vc.
func TestEmulatorSpanTreeMatchesSlotPipeline(t *testing.T) {
	tr := span.NewTracer(span.Config{Sample: 1, Seed: 9})
	cfg := baseConfig()
	cfg.GroupSize = 6
	cfg.Slots = 1
	cfg.Tracer = tr
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	spans := tr.Snapshot()
	var trace string
	for _, d := range spans {
		if d.Name == "slot" {
			trace = d.TraceID
		}
	}
	if trace == "" {
		t.Fatalf("no slot span among %d spans", len(spans))
	}
	roots := span.Tree(spans, trace)
	if len(roots) != 1 || roots[0].Name != "slot" {
		t.Fatalf("slot trace roots: %+v", roots)
	}
	byName := map[string]*span.Node{}
	for _, c := range roots[0].Children {
		byName[c.Name] = c
	}
	for _, want := range []string{"gather", "schedule", "play", "bayes-update"} {
		if byName[want] == nil {
			t.Fatalf("slot span missing %q child (have %v)", want, names(roots[0].Children))
		}
	}
	// Serial path (Workers=1): the scheduler stages hang directly off
	// the schedule span; the pool path interposes a "vc" span per shard.
	stages := names(byName["schedule"].Children)
	if len(stages) != 3 || stages[0] != "compact" || stages[1] != "phase1" || stages[2] != "phase2" {
		t.Fatalf("schedule stages = %v, want [compact phase1 phase2]", stages)
	}
}

func names(nodes []*span.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}

// TestIncrementalAuditLogMatchesCold runs the identical session with
// the cross-slot incremental caches on and off and asserts the audit
// logs carry byte-identical decisions slot for slot, then replays the
// incremental log — the emulator-level end of the DESIGN.md §11
// "byte-identical decisions" contract.
func TestIncrementalAuditLogMatchesCold(t *testing.T) {
	run := func(disable bool) []*audit.Record {
		t.Helper()
		dir := t.TempDir()
		cfg := baseConfig()
		cfg.GroupSize = 12
		cfg.Slots = 6
		cfg.ServerStreams = 4
		cfg.AuditDir = dir
		cfg.DisableIncremental = disable
		e, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		recs, err := audit.ReadFile(filepath.Join(dir, audit.FileName))
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	warm := run(false)
	cold := run(true)
	if len(warm) != len(cold) {
		t.Fatalf("incremental logged %d records, cold %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i].DecisionCanonical != cold[i].DecisionCanonical {
			t.Fatalf("slot %d decisions diverged:\nincremental: %s\ncold: %s",
				i, warm[i].DecisionCanonical, cold[i].DecisionCanonical)
		}
	}
	diverged, err := audit.ReplayAll(warm)
	if err != nil {
		t.Fatal(err)
	}
	if len(diverged) != 0 {
		t.Fatalf("incremental records %v diverged on replay", diverged)
	}
}

func TestRunEvaluatesSLO(t *testing.T) {
	e, err := New(baseConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SLO) != 2 {
		t.Fatalf("slo states = %+v, want 2 objectives", res.SLO)
	}
	names := map[string]bool{}
	for _, st := range res.SLO {
		names[st.Name] = true
		if st.TotalEvents != float64(res.SlotsRun) {
			t.Errorf("objective %s saw %v events, want %d", st.Name, st.TotalEvents, res.SlotsRun)
		}
		if len(st.Windows) != 2 {
			t.Errorf("objective %s windows = %+v", st.Name, st.Windows)
		}
	}
	if !names["slot-latency"] || !names["degraded-slots"] {
		t.Fatalf("objective names = %v", names)
	}
	// No deadline configured: no slot can degrade, so that objective's
	// budget must be untouched and nothing may alarm.
	for _, st := range res.SLO {
		if st.Name == "degraded-slots" && (st.BadEvents != 0 || st.Alarming) {
			t.Fatalf("degraded-slots state = %+v", st)
		}
	}
}

func TestSLOAlarmsOnSustainedSlowSlots(t *testing.T) {
	cfg := baseConfig()
	// A 1ns latency budget makes every slot a bad event, so both burn
	// windows must breach and the alarm must fire exactly once.
	cfg.SLOSlotLatency = time.Nanosecond
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var lat *slo.State
	for i := range res.SLO {
		if res.SLO[i].Name == "slot-latency" {
			lat = &res.SLO[i]
		}
	}
	if lat == nil {
		t.Fatal("slot-latency objective missing")
	}
	if !lat.Alarming || lat.BadEvents != float64(res.SlotsRun) {
		t.Fatalf("slot-latency state = %+v", lat)
	}
	if res.SLOAlarms != 1 {
		t.Fatalf("slo alarms = %d, want 1", res.SLOAlarms)
	}
}

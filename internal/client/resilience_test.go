package client

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"lpvs/internal/chaos"
	"lpvs/internal/device"
	"lpvs/internal/server"
	"lpvs/internal/stats"
	"lpvs/internal/video"
)

// chaoticEdge builds a real edge daemon wrapped in the chaos injector.
func chaoticEdge(tb testing.TB, cfg chaos.Config) (*httptest.Server, *chaos.Injector) {
	tb.Helper()
	stream, err := video.Generate(stats.NewRNG(1), video.DefaultGenConfig("ch", video.Esports, 120))
	if err != nil {
		tb.Fatal(err)
	}
	s, err := server.New(server.Config{Stream: stream, ServerStreams: -1, Lambda: 1})
	if err != nil {
		tb.Fatal(err)
	}
	inj, err := chaos.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(inj.Middleware(s.Handler()))
	tb.Cleanup(ts.Close)
	return ts, inj
}

// A retrying client rides out a chaos-injected edge: every injected
// 5xx carries a valid envelope, the client retries through them, and
// the session completes. The seed makes the fault pattern exact.
func TestRetrySurvivesChaoticEdge(t *testing.T) {
	ts, inj := chaoticEdge(t, chaos.Config{Seed: 2, ErrorProb: 0.4})
	dev := testDevice(t, "dev-1", 0.7)
	c, err := New(ts.URL, dev, nil, WithRetries(8, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := c.Report(); err != nil {
			t.Fatalf("report %d through chaos failed: %v", i, err)
		}
	}
	st := inj.Stats()
	if st.Errored == 0 {
		t.Fatalf("seed injected no faults (stats %+v); the test is vacuous", st)
	}
}

// Partial failures (truncated 200 bodies) surface as decode errors and
// are not silently accepted.
func TestPartialFailureSurfacesAsError(t *testing.T) {
	ts, _ := chaoticEdge(t, chaos.Config{PartialProb: 1})
	dev := testDevice(t, "dev-1", 0.7)
	c, err := New(ts.URL, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(); err == nil {
		t.Fatal("truncated response body accepted as success")
	}
}

// Chaos on the client's own transport (the lossy-network side): with
// retries the session still completes.
func TestRetrySurvivesChaoticTransport(t *testing.T) {
	ts, _ := chaoticEdge(t, chaos.Config{}) // clean server
	inj, err := chaos.New(chaos.Config{Seed: 9, ErrorProb: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	dev := testDevice(t, "dev-1", 0.7)
	httpc := &http.Client{Transport: inj.Transport(nil)}
	c, err := New(ts.URL, dev, httpc, WithRetries(8, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := c.Report(); err != nil {
			t.Fatalf("report %d through transport chaos failed: %v", i, err)
		}
	}
	if st := inj.Stats(); st.Errored == 0 {
		t.Fatalf("seed injected no transport faults (stats %+v)", st)
	}
}

// Non-200 responses decode into a typed *APIError carrying the
// envelope's stable code.
func TestTypedAPIError(t *testing.T) {
	ts, _ := chaoticEdge(t, chaos.Config{})
	dev := testDevice(t, "dev-1", 0.7)
	c, err := New(ts.URL, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Observing before ever reporting: the edge has never seen the
	// device.
	_, err = c.Observe(0.3)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v (%T) is not an *APIError", err, err)
	}
	if apiErr.Status != http.StatusNotFound || apiErr.Code != "unknown_device" {
		t.Fatalf("APIError %+v", apiErr)
	}
	if apiErr.Retryable {
		t.Fatal("404 marked retryable")
	}
}

// A shed request's Retry-After hint replaces the computed backoff for
// the next attempt.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"overloaded","message":"shed","retryable":true}}`))
			return
		}
		w.Write([]byte(`{"device_id":"dev-1","slot":0,"accepted":true}`))
	}))
	defer srv.Close()

	dev := testDevice(t, "dev-1", 0.7)
	c, err := New(srv.URL, dev, nil, WithRetries(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Report(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry after %v; the 1 s Retry-After hint was ignored", elapsed)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d calls, want 2", calls.Load())
	}
}

// The circuit breaker opens after `threshold` consecutive failures,
// fails fast while open, probes after the cooldown, and closes on a
// successful probe.
func TestCircuitBreakerLifecycle(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"internal","message":"down","retryable":true}}`))
			return
		}
		w.Write([]byte(`{"device_id":"dev-1","slot":0,"accepted":true}`))
	}))
	defer srv.Close()

	dev := testDevice(t, "dev-1", 0.7)
	c, err := New(srv.URL, dev, nil, WithCircuitBreaker(2, 40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := c.Report(); err == nil {
			t.Fatalf("report %d against a down edge succeeded", i)
		}
	}
	// Open: the call fails fast with ErrCircuitOpen, never reaching the
	// (now healthy) server.
	healthy.Store(true)
	if _, err := c.Report(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker returned %v, want ErrCircuitOpen", err)
	}
	// After the cooldown one probe is admitted; its success closes the
	// circuit and normal traffic resumes.
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Report(); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if _, err := c.Report(); err != nil {
		t.Fatalf("closed breaker rejected traffic: %v", err)
	}
}

// A failed probe re-opens the circuit for another full cooldown.
func TestCircuitBreakerReopensOnFailedProbe(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	dev := testDevice(t, "dev-1", 0.7)
	c, err := New(srv.URL, dev, nil, WithCircuitBreaker(1, 30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(); err == nil {
		t.Fatal("down edge accepted")
	}
	time.Sleep(40 * time.Millisecond)
	if _, err := c.Report(); errors.Is(err, ErrCircuitOpen) {
		t.Fatal("probe not admitted after cooldown")
	}
	// The probe failed: the circuit is open again immediately.
	if _, err := c.Report(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker not re-opened after failed probe: %v", err)
	}
}

// The retry budget caps amplification: once the bucket is empty,
// failures surface without further attempts.
func TestRetryBudgetExhaustion(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	dev := testDevice(t, "dev-1", 0.7)
	c, err := New(srv.URL, dev, nil,
		WithRetries(10, time.Millisecond), WithRetryBudget(3, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Report()
	if err == nil {
		t.Fatal("down edge accepted")
	}
	// 1 initial attempt + 3 budgeted retries; the 11-attempt retry
	// policy was cut short by the budget.
	if got := calls.Load(); got != 4 {
		t.Fatalf("%d attempts, want 4 (budget of 3 retries)", got)
	}
	// The second call has no retry tokens left at all.
	calls.Store(0)
	if _, err := c.Report(); err == nil {
		t.Fatal("down edge accepted")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d attempts with an empty budget, want 1", got)
	}
}

// Fleet batching: one POST covers every watching member, rides the
// first client's resilience stack, and skips members who stopped
// watching.
func TestFleetBatchedReport(t *testing.T) {
	ts, _ := chaoticEdge(t, chaos.Config{})
	clients := make([]*Client, 0, 3)
	for _, id := range []string{"dev-a", "dev-b", "dev-c"} {
		c, err := New(ts.URL, testDevice(t, id, 0.6), nil)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	fleet, err := NewFleet(clients...)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := fleet.Report()
	if err != nil {
		t.Fatal(err)
	}
	if batch.Accepted != 3 || batch.Rejected != 0 {
		t.Fatalf("batch %+v", batch)
	}
	tick(t, ts)
	for _, c := range clients {
		if _, err := c.Decision(); err != nil {
			t.Fatalf("%s has no decision after batched report: %v", c.Device().ID, err)
		}
	}
	// A member that stopped watching drops out of the next batch.
	clients[1].Device().State = device.GaveUp
	batch, err = fleet.Report()
	if err != nil {
		t.Fatal(err)
	}
	if batch.Accepted != 2 {
		t.Fatalf("batch after give-up %+v", batch)
	}
}

func TestFleetValidation(t *testing.T) {
	if _, err := NewFleet(); err == nil {
		t.Fatal("empty fleet accepted")
	}
	ts1, _ := chaoticEdge(t, chaos.Config{})
	ts2, _ := chaoticEdge(t, chaos.Config{})
	c1, err := New(ts1.URL, testDevice(t, "dev-a", 0.6), nil)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := New(ts2.URL, testDevice(t, "dev-b", 0.6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFleet(c1, c2); err == nil {
		t.Fatal("cross-edge fleet accepted")
	}
	if _, err := NewFleet(c1, nil); err == nil {
		t.Fatal("nil member accepted")
	}
}

package client

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lpvs/internal/device"
	"lpvs/internal/display"
	"lpvs/internal/server"
	"lpvs/internal/stats"
	"lpvs/internal/video"
)

func edgeServer(tb testing.TB, streams int) *httptest.Server {
	tb.Helper()
	stream, err := video.Generate(stats.NewRNG(1), video.DefaultGenConfig("ch", video.Esports, 120))
	if err != nil {
		tb.Fatal(err)
	}
	s, err := server.New(server.Config{Stream: stream, ServerStreams: streams, Lambda: 1})
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return ts
}

func testDevice(tb testing.TB, id string, energy float64) *device.Device {
	tb.Helper()
	bat, err := device.NewBattery(50_000, energy)
	if err != nil {
		tb.Fatal(err)
	}
	return &device.Device{
		ID:         id,
		Display:    display.Spec{Type: display.OLED, Resolution: display.Res1080p, DiagonalInch: 6, Brightness: 0.6},
		Battery:    bat,
		BasePowerW: 0.4,
		GiveUpFrac: 0.05,
	}
}

func tick(tb testing.TB, ts *httptest.Server) server.TickResponse {
	tb.Helper()
	resp, err := http.Post(ts.URL+"/v1/tick", "application/json", strings.NewReader("{}"))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("tick status %d", resp.StatusCode)
	}
	var out server.TickResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		tb.Fatal(err)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New("http://x", nil, nil); err == nil {
		t.Fatal("nil device accepted")
	}
	bad := testDevice(t, "", 0.5)
	if _, err := New("http://x", bad, nil); err == nil {
		t.Fatal("invalid device accepted")
	}
}

func TestReportAndDecision(t *testing.T) {
	ts := edgeServer(t, -1)
	c, err := New(ts.URL, testDevice(t, "dev-1", 0.6), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatal("report rejected")
	}
	tick(t, ts)
	dec, err := c.Decision()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Transform {
		t.Fatal("not selected under unbounded capacity")
	}
}

func TestPlaySlotDrainsBatteryAndObserves(t *testing.T) {
	ts := edgeServer(t, -1)
	dev := testDevice(t, "dev-1", 0.8)
	c, err := New(ts.URL, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(); err != nil {
		t.Fatal(err)
	}
	tick(t, ts)

	levelBefore := dev.Battery.LevelJ
	res, err := c.PlaySlot(30)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksPlayed != 30 {
		t.Fatalf("played %d chunks", res.ChunksPlayed)
	}
	if !res.Transformed {
		t.Fatal("slot not transformed")
	}
	if res.MeanReduction <= 0 || res.MeanReduction >= 1 {
		t.Fatalf("mean reduction %v", res.MeanReduction)
	}
	if dev.Battery.LevelJ >= levelBefore {
		t.Fatal("battery did not drain")
	}
	if res.EnergyJ >= res.UntransformedJ {
		t.Fatalf("transform saved nothing: %v vs %v", res.EnergyJ, res.UntransformedJ)
	}

	// The observation must have reached the edge estimator.
	dec, err := c.Decision()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Gamma == 0.31 {
		t.Fatal("gamma still at prior midpoint after observation")
	}
}

func TestPlaySlotUnselected(t *testing.T) {
	ts := edgeServer(t, 0)
	dev := testDevice(t, "dev-1", 0.8)
	c, err := New(ts.URL, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(); err != nil {
		t.Fatal(err)
	}
	tick(t, ts)
	res, err := c.PlaySlot(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transformed {
		t.Fatal("transformed on a zero-capacity edge")
	}
	if res.EnergyJ != res.UntransformedJ {
		t.Fatal("untransformed playback should cost plain power")
	}
}

func TestPlaySlotStopsOnGiveUp(t *testing.T) {
	ts := edgeServer(t, -1)
	dev := testDevice(t, "dev-1", 0.051) // just above the 5% give-up line
	c, err := New(ts.URL, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(); err != nil {
		t.Fatal(err)
	}
	tick(t, ts)
	res, err := c.PlaySlot(30)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksPlayed == 30 && dev.State == device.Watching {
		t.Fatal("device should have given up mid-slot")
	}
	if dev.State != device.GaveUp {
		t.Fatalf("state %v, want GaveUp", dev.State)
	}
}

func TestPlaylistAndPlayCurrentSlot(t *testing.T) {
	ts := edgeServer(t, -1)
	dev := testDevice(t, "dev-1", 0.8)
	c, err := New(ts.URL, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(); err != nil {
		t.Fatal(err)
	}
	tick(t, ts)

	pl, err := c.Playlist()
	if err != nil {
		t.Fatal(err)
	}
	if pl.Chunks != 30 {
		t.Fatalf("playlist chunks = %d", pl.Chunks)
	}
	res, err := c.PlayCurrentSlot()
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksPlayed != pl.Chunks {
		t.Fatalf("played %d of %d", res.ChunksPlayed, pl.Chunks)
	}
}

func TestRetryRecoversFromFlakyEdge(t *testing.T) {
	// A handler that fails twice with 503 before succeeding.
	fails := 2
	inner := edgeServer(t, -1)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 {
			fails--
			http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		// Proxy to the real edge.
		resp, err := forward(inner.URL, r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	defer flaky.Close()

	dev := testDevice(t, "dev-1", 0.7)
	c, err := New(flaky.URL, dev, nil, WithRetries(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Report()
	if err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if !rep.Accepted {
		t.Fatal("report rejected")
	}
	if fails != 0 {
		t.Fatalf("expected both failures consumed, %d left", fails)
	}
}

func TestNoRetryFailsFast(t *testing.T) {
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer always.Close()
	dev := testDevice(t, "dev-1", 0.7)
	c, err := New(always.URL, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(); err == nil {
		t.Fatal("503 swallowed without retries")
	}
}

func TestRetryDoesNotRetry4xx(t *testing.T) {
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls++
		http.Error(w, `{"error":"bad"}`, http.StatusBadRequest)
	}))
	defer srv.Close()
	dev := testDevice(t, "dev-1", 0.7)
	c, err := New(srv.URL, dev, nil, WithRetries(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(); err == nil {
		t.Fatal("400 swallowed")
	}
	if calls != 1 {
		t.Fatalf("4xx retried %d times", calls)
	}
}

func forward(base string, r *http.Request) (*http.Response, error) {
	if r.Method == http.MethodPost {
		return http.Post(base+r.URL.RequestURI(), "application/json", r.Body)
	}
	return http.Get(base + r.URL.RequestURI())
}

func TestMultiDeviceSession(t *testing.T) {
	ts := edgeServer(t, -1)
	clients := make([]*Client, 0, 8)
	for i := 0; i < 8; i++ {
		dev := testDevice(t, deviceName(i), 0.3+0.08*float64(i))
		c, err := New(ts.URL, dev, nil)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for slot := 0; slot < 3; slot++ {
		for _, c := range clients {
			if c.Device().State != device.Watching {
				continue
			}
			if _, err := c.Report(); err != nil {
				t.Fatal(err)
			}
		}
		tick(t, ts)
		for _, c := range clients {
			if c.Device().State != device.Watching {
				continue
			}
			if _, err := c.PlaySlot(30); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, c := range clients {
		if c.Device().WatchedSec == 0 {
			t.Fatalf("device %s never watched", c.Device().ID)
		}
	}
}

func deviceName(i int) string {
	return "dev-" + string(rune('a'+i))
}

package client

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"lpvs/internal/server"
)

// The Caller is the shared transport under both the device Client and
// the router's shard-forwarding client; these tests pin its public
// surface directly.

func TestCallerEnvelopeError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":{"code":"unknown_device","message":"nope","retryable":false}}`))
	}))
	defer ts.Close()

	c, err := NewCaller(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var out struct{}
	err = c.GetJSON("/v1/decision?device=x", &out)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Status != http.StatusNotFound || apiErr.Code != server.CodeUnknownDevice {
		t.Fatalf("bad envelope decode: %+v", apiErr)
	}
}

func TestCallerRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	c, err := NewCaller(ts.URL, WithRetries(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.PostJSON("/x", map[string]int{}, &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || calls.Load() != 3 {
		t.Fatalf("ok=%v calls=%d", out.OK, calls.Load())
	}
}

func TestCallerBreakerShared(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	c, err := NewCaller(ts.URL, WithCircuitBreaker(2, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	c.GetJSON("/a", nil)
	c.GetJSON("/a", nil) // second failure opens the circuit
	err = c.GetJSON("/a", nil)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
}

func TestCallerNilOut(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"whatever": 1}`))
	}))
	defer ts.Close()
	c, err := NewCaller(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.GetJSON("/x", nil); err != nil {
		t.Fatalf("nil out should discard the body: %v", err)
	}
}

func TestWithHTTPClientOption(t *testing.T) {
	used := false
	hc := &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
		used = true
		return nil, errors.New("sentinel")
	})}
	c, err := NewCaller("http://example.invalid", WithHTTPClient(hc))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.GetJSON("/x", nil); err == nil {
		t.Fatal("want transport error")
	}
	if !used {
		t.Fatal("WithHTTPClient transport not used")
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

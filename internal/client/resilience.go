package client

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// This file is the client side of the resilience layer (DESIGN.md
// §12): the typed v1 error envelope, a circuit breaker that stops
// hammering a failing edge, and a retry budget that bounds how much
// retry traffic a struggling fleet can amplify. All three are opt-in
// via Options and add nothing to the request path when unused.

// APIError is a decoded v1 error envelope. Every non-200 edge response
// surfaces as one (errors.As-able), so callers can switch on the
// stable Code instead of scraping message strings.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable error code (server.Code*), or
	// "unknown" when the body was not a v1 envelope (a proxy error, an
	// old server).
	Code string
	// Message is the server's prose.
	Message string
	// Retryable echoes the envelope's verdict: whether repeating the
	// identical request can ever succeed.
	Retryable bool
	// RetryAfter is the server's back-off hint (zero when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: edge returned %d (%s): %s", e.Status, e.Code, e.Message)
}

// ErrCircuitOpen is returned (wrapped in errors.Is-able form) when the
// circuit breaker is open and the call was not attempted.
var ErrCircuitOpen = fmt.Errorf("client: circuit breaker open")

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a three-state circuit breaker: `threshold` consecutive
// failures open it, rejecting calls without touching the network;
// after `cooldown` one probe is let through (half-open) and its
// outcome closes or re-opens the circuit.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	state    int
	failures int
	openedAt time.Time
	probing  bool
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a call may proceed. In the open state it
// returns ErrCircuitOpen until the cooldown elapses, then admits a
// single probe.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrCircuitOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open: one probe at a time
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// record feeds a call outcome back. Any response from a live server —
// including 4xx — counts as success; transport failures, 5xx and shed
// requests count as failures.
func (b *breaker) record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if success {
		b.state = breakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.failures = 0
	}
}

// retryBudget is a token bucket bounding retry amplification: each
// retry spends one token, each successful request earns `ratio`
// tokens (capped at `max`). A fleet that is mostly failing therefore
// runs out of retries instead of multiplying the overload — the
// standard antidote to retry storms.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
}

func newRetryBudget(max, ratio float64) *retryBudget {
	return &retryBudget{tokens: max, max: max, ratio: ratio}
}

// spend consumes one retry token if available.
func (rb *retryBudget) spend() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}

// earn credits a successful request.
func (rb *retryBudget) earn() {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	rb.tokens += rb.ratio
	if rb.tokens > rb.max {
		rb.tokens = rb.max
	}
}

// retryAfter parses the Retry-After header (delta-seconds form; the
// HTTP-date form is not used by the edge) — zero when absent or
// unparsable.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

package client

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"lpvs/internal/server"
	"lpvs/internal/wire"
)

// oldDaemon stubs a pre-binary edge daemon: it JSON-decodes every
// report body regardless of Content-Type, exactly like the seed
// handleReport did, so a binary frame comes back as a 400 bad_request
// "decode: ..." envelope. binary/jsonOK count what the client sent.
func oldDaemon(tb testing.TB) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	tb.Helper()
	var binary, jsonOK atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		var req server.ReportRequest
		var reqs []server.ReportRequest
		if json.Unmarshal(body, &req) != nil && json.Unmarshal(body, &reqs) != nil {
			binary.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: server.ErrorBody{
				Code:    server.CodeBadRequest,
				Message: "decode: invalid character 'L' looking for beginning of value",
			}})
			return
		}
		jsonOK.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if len(reqs) > 0 {
			json.NewEncoder(w).Encode(server.BatchReportResponse{Slot: 1, Accepted: len(reqs)})
			return
		}
		json.NewEncoder(w).Encode(server.ReportResponse{Slot: 1, Accepted: true})
	}))
	tb.Cleanup(ts.Close)
	return ts, &binary, &jsonOK
}

// TestWireFallbackOldDaemon is the compatibility regression: against a
// daemon that predates the binary codec, the client's first report
// tries the wire format, eats the decode 400, resends as JSON, and
// stays on JSON for good — one wasted round-trip per process, not per
// slot.
func TestWireFallbackOldDaemon(t *testing.T) {
	ts, binary, jsonOK := oldDaemon(t)
	c, err := New(ts.URL, testDevice(t, "dev-old", 0.6), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		resp, err := c.Report()
		if err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		if !resp.Accepted {
			t.Fatalf("report %d not accepted", i)
		}
	}
	if _, err := c.ReportBatch([]server.ReportRequest{c.ReportRequest()}); err != nil {
		t.Fatalf("batch after fallback: %v", err)
	}
	if got := binary.Load(); got != 1 {
		t.Fatalf("binary attempts = %d, want exactly 1 (fallback must be sticky)", got)
	}
	if got := jsonOK.Load(); got != 4 {
		t.Fatalf("json reports = %d, want 4", got)
	}
}

// TestWireFallbackOn415 covers the forward-skew case: a daemon that
// knows the Content-Type but not this frame version answers 415
// unsupported_media, and the client downgrades to JSON.
func TestWireFallbackOn415(t *testing.T) {
	var binary, jsonOK atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.Header.Get("Content-Type") == wire.ContentType {
			binary.Add(1)
			w.WriteHeader(http.StatusUnsupportedMediaType)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: server.ErrorBody{
				Code:    server.CodeUnsupportedMedia,
				Message: "binary report: unsupported frame version",
			}})
			return
		}
		jsonOK.Add(1)
		json.NewEncoder(w).Encode(server.ReportResponse{Slot: 1, Accepted: true})
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, testDevice(t, "dev-skew", 0.6), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Report(); err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
	}
	if binary.Load() != 1 || jsonOK.Load() != 2 {
		t.Fatalf("binary=%d json=%d, want 1 and 2", binary.Load(), jsonOK.Load())
	}
}

// TestNoFallbackOnValidation400 pins the negative space: an envelope
// validation rejection (unknown channel) is the caller's bug, not a
// codec mismatch, and must NOT flip the client to JSON.
func TestNoFallbackOnValidation400(t *testing.T) {
	ts := edgeServer(t, -1)
	c, err := New(ts.URL, testDevice(t, "dev-val", 0.6), nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetChannel("no-such-channel")
	if _, err := c.Report(); err == nil {
		t.Fatal("unknown channel accepted")
	}
	if c.jsonOnly {
		t.Fatal("validation 400 flipped the client to JSON")
	}
	c.SetChannel("")
	if resp, err := c.Report(); err != nil || !resp.Accepted {
		t.Fatalf("report after fixing channel: %+v, %v", resp, err)
	}
}

// TestBinaryDefaultAgainstRealDaemon proves the happy path end to end:
// a fresh client speaks binary to the real daemon with no JSON leg.
func TestBinaryDefaultAgainstRealDaemon(t *testing.T) {
	ts := edgeServer(t, -1)
	c, err := New(ts.URL, testDevice(t, "dev-bin", 0.6), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Report()
	if err != nil || !resp.Accepted {
		t.Fatalf("binary report: %+v, %v", resp, err)
	}
	if c.jsonOnly {
		t.Fatal("client fell back against a binary-capable daemon")
	}
	batch, err := c.ReportBatch([]server.ReportRequest{c.ReportRequest()})
	if err != nil || batch.Accepted != 1 {
		t.Fatalf("binary batch: %+v, %v", batch, err)
	}
	if len(batch.Results) != 0 {
		t.Fatalf("binary batch returned %d results, want rejections only", len(batch.Results))
	}
}

// TestWithJSONReports pins the opt-out: a JSON-forced client never
// attempts the binary leg.
func TestWithJSONReports(t *testing.T) {
	var binary atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Content-Type") == wire.ContentType {
			binary.Add(1)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(server.ReportResponse{Slot: 1, Accepted: true})
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, testDevice(t, "dev-json", 0.6), nil, WithJSONReports())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(); err != nil {
		t.Fatal(err)
	}
	if binary.Load() != 0 {
		t.Fatalf("JSON-forced client sent %d binary requests", binary.Load())
	}
}

package client

import (
	"fmt"

	"lpvs/internal/device"
	"lpvs/internal/server"
)

// Fleet groups device clients of one edge daemon so the per-slot
// report step costs one batched POST /v1/report round-trip instead of
// one per device. Decisions, playback and observations stay per-client
// — only reporting aggregates.
type Fleet struct {
	clients []*Client
	// reqs is the reused per-slot report batch; ReportBatch encodes it
	// before returning, so overwriting it next slot is safe.
	reqs []server.ReportRequest
}

// NewFleet builds a fleet from clients of the same edge daemon. The
// batch rides the first client's transport, retry, budget and breaker
// configuration.
func NewFleet(clients ...*Client) (*Fleet, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("client: empty fleet")
	}
	if clients[0] == nil {
		return nil, fmt.Errorf("client: nil client in fleet")
	}
	base := clients[0].call.Base()
	for _, c := range clients {
		if c == nil {
			return nil, fmt.Errorf("client: nil client in fleet")
		}
		if c.call.Base() != base {
			return nil, fmt.Errorf("client: fleet spans edges %q and %q", base, c.call.Base())
		}
	}
	return &Fleet{clients: clients}, nil
}

// Clients returns the fleet members.
func (f *Fleet) Clients() []*Client { return f.clients }

// Report batches the slot reports of every member whose device is
// currently watching (idle or dead devices have nothing to request)
// into one round-trip. Per-item rejections do not error the call —
// they are returned in the response's Results.
func (f *Fleet) Report() (server.BatchReportResponse, error) {
	reqs := f.reqs[:0]
	for _, c := range f.clients {
		if c.dev.State != device.Watching {
			continue
		}
		reqs = append(reqs, c.ReportRequest())
	}
	f.reqs = reqs
	if len(reqs) == 0 {
		return server.BatchReportResponse{}, nil
	}
	return f.clients[0].ReportBatch(reqs)
}

package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"lpvs/internal/server"
)

// This file is the shared transport option set and the Caller it
// configures. The device Client and the router's shard-forwarding
// client (internal/router) are both built on one Caller per base URL,
// so retries, the circuit breaker, the retry budget and Retry-After
// handling behave identically on the public edge and on the
// node-to-node /v1/shard/* surface.

// Options is the resolved transport/resilience configuration. Build it
// by applying Option funcs; the zero value means "no retries, no
// breaker, no budget, binary reports, http.DefaultClient".
type Options struct {
	// HTTP is the underlying transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Retries and Backoff configure WithRetries.
	Retries int
	Backoff time.Duration
	// BreakerThreshold and BreakerCooldown configure WithCircuitBreaker
	// (threshold 0 = no breaker).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// BudgetMax and BudgetRatio configure WithRetryBudget (max 0 = no
	// budget).
	BudgetMax   float64
	BudgetRatio float64
	// JSONReports forces the JSON report codec (WithJSONReports).
	JSONReports bool
}

// Option customises a Client or a Caller.
type Option func(*Options)

// WithHTTPClient sets the underlying *http.Client (timeouts,
// transport); nil keeps http.DefaultClient.
func WithHTTPClient(h *http.Client) Option {
	return func(o *Options) { o.HTTP = h }
}

// WithRetries makes the caller retry transport errors, 5xx responses
// and shed (429) requests up to n extra attempts with exponential
// backoff starting at initial; a server Retry-After hint overrides the
// computed backoff for that attempt. Other 4xx responses are never
// retried — they mean the request is wrong.
func WithRetries(n int, initial time.Duration) Option {
	return func(o *Options) {
		if n < 0 {
			n = 0
		}
		if initial <= 0 {
			initial = 50 * time.Millisecond
		}
		o.Retries = n
		o.Backoff = initial
	}
}

// WithCircuitBreaker opens the circuit after `threshold` consecutive
// failures (transport errors, 5xx, 429): while open, calls fail
// immediately with ErrCircuitOpen instead of touching the network;
// after `cooldown` one probe is admitted and its outcome closes or
// re-opens the circuit. Any response from a live server — including
// 4xx — counts as a success for the breaker.
func WithCircuitBreaker(threshold int, cooldown time.Duration) Option {
	return func(o *Options) {
		if threshold < 1 {
			threshold = 1
		}
		if cooldown <= 0 {
			cooldown = time.Second
		}
		o.BreakerThreshold = threshold
		o.BreakerCooldown = cooldown
	}
}

// WithRetryBudget bounds retry amplification: each retry spends one
// token from a bucket of `max`, refilled by `ratio` tokens per
// successful request. When the bucket is empty, failures surface
// immediately instead of multiplying load on a struggling edge.
func WithRetryBudget(max, ratio float64) Option {
	return func(o *Options) {
		if max < 1 {
			max = 1
		}
		if ratio <= 0 {
			ratio = 0.1
		}
		o.BudgetMax = max
		o.BudgetRatio = ratio
	}
}

// WithJSONReports forces reports onto the JSON codec, skipping the
// binary default and its negotiation round-trip (for old daemons known
// in advance, or debugging with readable bodies).
func WithJSONReports() Option {
	return func(o *Options) { o.JSONReports = true }
}

// Caller is a resilient HTTP caller bound to one base URL: retries
// with exponential backoff and Retry-After honouring, an optional
// circuit breaker, and an optional retry budget. Every non-200
// response surfaces as a typed *APIError carrying the v1 envelope.
type Caller struct {
	base string
	http *http.Client

	retries int
	backoff time.Duration
	breaker *breaker     // nil = no circuit breaking
	budget  *retryBudget // nil = unbounded retries (up to `retries`)
}

// NewCaller builds a caller for the daemon at baseURL.
func NewCaller(baseURL string, opts ...Option) (*Caller, error) {
	if _, err := url.Parse(baseURL); err != nil {
		return nil, fmt.Errorf("client: bad base URL: %w", err)
	}
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return newCaller(baseURL, o), nil
}

// newCaller wires resolved Options to a base URL (shared with Client,
// whose New keeps its httpClient parameter for compatibility).
func newCaller(baseURL string, o Options) *Caller {
	c := &Caller{
		base:    baseURL,
		http:    o.HTTP,
		retries: o.Retries,
		backoff: o.Backoff,
	}
	if c.http == nil {
		c.http = http.DefaultClient
	}
	if o.BreakerThreshold > 0 {
		c.breaker = newBreaker(o.BreakerThreshold, o.BreakerCooldown)
	}
	if o.BudgetMax > 0 {
		c.budget = newRetryBudget(o.BudgetMax, o.BudgetRatio)
	}
	return c
}

// Base returns the caller's base URL.
func (c *Caller) Base() string { return c.base }

// GetJSON GETs base+path and decodes the 200 body into out (non-200s
// become *APIError).
func (c *Caller) GetJSON(path string, out any) error {
	return c.withRetry(func() (*http.Response, error) {
		return c.http.Get(c.base + path)
	}, "GET "+path, out)
}

// PostJSON POSTs body as JSON to base+path and decodes the response.
func (c *Caller) PostJSON(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: marshal: %w", err)
	}
	return c.withRetry(func() (*http.Response, error) {
		return c.http.Post(c.base+path, "application/json", bytes.NewReader(buf))
	}, "POST "+path, out)
}

// PostRaw POSTs a pre-encoded body with an explicit Content-Type
// (the binary report codec path) and decodes the JSON response.
func (c *Caller) PostRaw(path, contentType string, raw []byte, out any) error {
	return c.withRetry(func() (*http.Response, error) {
		return c.http.Post(c.base+path, contentType, bytes.NewReader(raw))
	}, "POST "+path, out)
}

// withRetry runs the request, retrying transport failures, 5xx
// responses and shed (429) requests with exponential backoff when the
// caller was built with WithRetries. A server Retry-After hint
// replaces the computed backoff for that attempt; the circuit breaker
// and retry budget (when configured) gate every attempt.
func (c *Caller) withRetry(do func() (*http.Response, error), label string, out any) error {
	delay := c.backoff
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if c.budget != nil && !c.budget.spend() {
				return fmt.Errorf("client: %s: retry budget exhausted: %w", label, lastErr)
			}
			time.Sleep(delay)
			delay *= 2
		}
		if c.breaker != nil {
			if err := c.breaker.allow(); err != nil {
				if lastErr != nil {
					return fmt.Errorf("%w (last error: %w)", err, lastErr)
				}
				return err
			}
		}
		resp, err := do()
		if err != nil {
			lastErr = fmt.Errorf("client: %s: %w", label, err)
			c.recordOutcome(false)
			continue
		}
		if retriableStatus(resp.StatusCode) {
			if ra := retryAfter(resp); ra > 0 {
				delay = ra
			}
			lastErr = decode(resp, out)
			resp.Body.Close()
			c.recordOutcome(false)
			continue
		}
		err = decode(resp, out)
		resp.Body.Close()
		// The server answered and was not failing: a 4xx is the
		// caller's problem, not the edge's health.
		c.recordOutcome(true)
		if c.budget != nil && err == nil {
			c.budget.earn()
		}
		return err
	}
	return lastErr
}

// retriableStatus: server faults and shedding; never other 4xx.
func retriableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

func (c *Caller) recordOutcome(success bool) {
	if c.breaker != nil {
		c.breaker.record(success)
	}
}

// decode parses a response: 200 bodies into out, everything else into
// a typed *APIError carrying the v1 envelope's code and retryability
// (code "unknown" when the body was not an envelope).
func decode(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{
			Status:     resp.StatusCode,
			Code:       "unknown",
			Message:    fmt.Sprintf("status %d", resp.StatusCode),
			Retryable:  retriableStatus(resp.StatusCode),
			RetryAfter: retryAfter(resp),
		}
		var env server.ErrorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
			apiErr.Code = env.Error.Code
			apiErr.Message = env.Error.Message
			apiErr.Retryable = env.Error.Retryable
		}
		return apiErr
	}
	if out == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode: %w", err)
	}
	return nil
}

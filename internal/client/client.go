// Package client implements the device side of the LPVS edge protocol:
// reporting status, fetching decisions and chunk metadata, simulating
// playback with the local display power model, and feeding realised
// power reductions back to the edge.
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"lpvs/internal/device"
	"lpvs/internal/display"
	"lpvs/internal/server"
	"lpvs/internal/stats"
	"lpvs/internal/wire"
)

// Client talks to one LPVS edge daemon on behalf of one device.
type Client struct {
	base    string
	http    *http.Client
	dev     *device.Device
	channel string // stream the device watches; empty = the default

	retries int
	backoff time.Duration
	breaker *breaker     // nil = no circuit breaking
	budget  *retryBudget // nil = unbounded retries (up to `retries`)

	// Codec negotiation (DESIGN.md §16): reports go out in the binary
	// wire format by default; a daemon that does not speak it (415, or
	// an old daemon's JSON-decode 400 on the binary body) flips the
	// client to JSON for good. wireBuf is the reused encode buffer, so
	// a steady-state reporter allocates no per-slot body.
	jsonOnly bool
	wireBuf  []byte
}

// Option customises a Client.
type Option func(*Client)

// WithRetries makes the client retry transport errors, 5xx responses
// and shed (429) requests up to n extra attempts with exponential
// backoff starting at initial; a server Retry-After hint overrides the
// computed backoff for that attempt. Other 4xx responses are never
// retried — they mean the request is wrong.
func WithRetries(n int, initial time.Duration) Option {
	return func(c *Client) {
		if n < 0 {
			n = 0
		}
		if initial <= 0 {
			initial = 50 * time.Millisecond
		}
		c.retries = n
		c.backoff = initial
	}
}

// WithCircuitBreaker opens the circuit after `threshold` consecutive
// failures (transport errors, 5xx, 429): while open, calls fail
// immediately with ErrCircuitOpen instead of touching the network;
// after `cooldown` one probe is admitted and its outcome closes or
// re-opens the circuit. Any response from a live server — including
// 4xx — counts as a success for the breaker.
func WithCircuitBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) {
		if threshold < 1 {
			threshold = 1
		}
		if cooldown <= 0 {
			cooldown = time.Second
		}
		c.breaker = newBreaker(threshold, cooldown)
	}
}

// WithRetryBudget bounds retry amplification: each retry spends one
// token from a bucket of `max`, refilled by `ratio` tokens per
// successful request. When the bucket is empty, failures surface
// immediately instead of multiplying load on a struggling edge.
func WithRetryBudget(max, ratio float64) Option {
	return func(c *Client) {
		if max < 1 {
			max = 1
		}
		if ratio <= 0 {
			ratio = 0.1
		}
		c.budget = newRetryBudget(max, ratio)
	}
}

// WithJSONReports forces reports onto the JSON codec, skipping the
// binary default and its negotiation round-trip (for old daemons known
// in advance, or debugging with readable bodies).
func WithJSONReports() Option {
	return func(c *Client) { c.jsonOnly = true }
}

// SetChannel switches which of the edge's streams subsequent reports
// subscribe to (empty = the site's default stream).
func (c *Client) SetChannel(id string) { c.channel = id }

// New builds a client for the device against the daemon at baseURL.
// Pass nil for the default HTTP client.
func New(baseURL string, dev *device.Device, httpClient *http.Client, opts ...Option) (*Client, error) {
	if dev == nil {
		return nil, fmt.Errorf("client: nil device")
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if _, err := url.Parse(baseURL); err != nil {
		return nil, fmt.Errorf("client: bad base URL: %w", err)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: baseURL, http: httpClient, dev: dev}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Device returns the client's device.
func (c *Client) Device() *device.Device { return c.dev }

// ReportRequest builds the device's slot report in wire form — what
// Report sends, exposed so batching callers (Fleet) can aggregate.
func (c *Client) ReportRequest() server.ReportRequest {
	return server.ReportRequest{
		DeviceID:         c.dev.ID,
		ChannelID:        c.channel,
		DisplayType:      c.dev.Display.Type.String(),
		Width:            c.dev.Display.Resolution.Width,
		Height:           c.dev.Display.Resolution.Height,
		DiagonalInch:     c.dev.Display.DiagonalInch,
		Brightness:       c.dev.Display.Brightness,
		EnergyFrac:       c.dev.EnergyFrac(),
		BatteryCapacityJ: c.dev.Battery.CapacityJ,
		BasePowerW:       c.dev.BasePowerW,
	}
}

// Report sends the device's slot report, binary-framed unless the
// client has negotiated down to JSON (see WithJSONReports and
// wireFallback).
func (c *Client) Report() (server.ReportResponse, error) {
	var resp server.ReportResponse
	req := c.ReportRequest()
	if !c.jsonOnly {
		buf, err := wire.AppendSingle(c.wireBuf[:0], &req)
		if err == nil {
			c.wireBuf = buf
			err = c.postWire(buf, &resp)
			if !wireFallback(err) {
				return resp, err
			}
			c.jsonOnly = true
		}
		// Unencodable report or a daemon without the codec: JSON below.
	}
	err := c.post("/v1/report", req, &resp)
	return resp, err
}

// ReportBatch posts many reports as one body — one round-trip for a
// whole co-located fleet instead of one per device — binary-framed
// unless the client has negotiated down to JSON. The reports need not
// belong to this client's device; the call just rides its transport,
// retry and breaker machinery. Per-item failures do not error the call
// — inspect the response's Results (rejections only on the binary
// codec).
func (c *Client) ReportBatch(reqs []server.ReportRequest) (server.BatchReportResponse, error) {
	var resp server.BatchReportResponse
	if !c.jsonOnly {
		buf, err := wire.AppendBatch(c.wireBuf[:0], reqs)
		if err == nil {
			c.wireBuf = buf
			err = c.postWire(buf, &resp)
			if !wireFallback(err) {
				return resp, err
			}
			c.jsonOnly = true
		}
	}
	err := c.post("/v1/report", reqs, &resp)
	return resp, err
}

// postWire posts a binary-framed report body; responses are JSON in
// both codecs, so decoding is shared.
func (c *Client) postWire(raw []byte, out any) error {
	return c.withRetry(func() (*http.Response, error) {
		return c.http.Post(c.base+"/v1/report", wire.ContentType, bytes.NewReader(raw))
	}, "POST /v1/report", out)
}

// wireFallback reports whether a binary report's failure means the
// daemon does not speak the codec: a 415 (version skew on a daemon
// that knows the Content-Type), or the JSON-decode 400 an old daemon
// produces when it tries to parse the binary body as JSON. Envelope
// validation 400s (bad display, unknown channel) are NOT fallbacks —
// resending them as JSON would fail identically.
func wireFallback(err error) bool {
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	if apiErr.Status == http.StatusUnsupportedMediaType {
		return true
	}
	return apiErr.Status == http.StatusBadRequest &&
		apiErr.Code == server.CodeBadRequest &&
		strings.HasPrefix(apiErr.Message, "decode")
}

// Decision fetches the device's current transform decision.
func (c *Client) Decision() (server.DecisionResponse, error) {
	var resp server.DecisionResponse
	err := c.get("/v1/decision?device="+url.QueryEscape(c.dev.ID), &resp)
	return resp, err
}

// Chunk fetches metadata of one chunk in the device's current slot.
func (c *Client) Chunk(index int) (server.ChunkResponse, error) {
	var resp server.ChunkResponse
	err := c.get("/v1/chunk?device="+url.QueryEscape(c.dev.ID)+"&index="+strconv.Itoa(index), &resp)
	return resp, err
}

// Playlist fetches the manifest of the device's current slot.
func (c *Client) Playlist() (server.PlaylistResponse, error) {
	var resp server.PlaylistResponse
	err := c.get("/v1/playlist?device="+url.QueryEscape(c.dev.ID), &resp)
	return resp, err
}

// PlayCurrentSlot fetches the slot manifest and plays every chunk in it
// — the full player loop without the caller knowing the slot geometry.
func (c *Client) PlayCurrentSlot() (SlotResult, error) {
	pl, err := c.Playlist()
	if err != nil {
		return SlotResult{}, err
	}
	return c.PlaySlot(pl.Chunks)
}

// Observe reports the realised mean power reduction of the played slot.
func (c *Client) Observe(reduction float64) (server.ObserveResponse, error) {
	var resp server.ObserveResponse
	err := c.post("/v1/observe", server.ObserveRequest{DeviceID: c.dev.ID, Reduction: reduction}, &resp)
	return resp, err
}

// SlotResult summarises one played slot on the client.
type SlotResult struct {
	ChunksPlayed   int
	WatchedSec     float64
	EnergyJ        float64
	UntransformedJ float64
	MeanReduction  float64
	Transformed    bool
}

// PlaySlot plays chunk metadata [0, chunks) of the current slot on the
// local device: it derives the display power from the served content
// statistics (honouring the backlight-scale instruction), drains the
// battery, and — when the slot was transformed — feeds the realised
// reduction back to the edge.
func (c *Client) PlaySlot(chunks int) (SlotResult, error) {
	var res SlotResult
	dec, err := c.Decision()
	if err != nil {
		return res, err
	}
	res.Transformed = dec.Transform
	var reductions []float64
	for k := 0; k < chunks; k++ {
		if c.dev.State != device.Watching {
			break
		}
		chunk, err := c.Chunk(k)
		if err != nil {
			return res, err
		}
		cs := display.ContentStats{
			MeanLuma: chunk.MeanLuma,
			PeakLuma: chunk.PeakLuma,
			MeanR:    chunk.MeanR,
			MeanG:    chunk.MeanG,
			MeanB:    chunk.MeanB,
		}
		spec := c.dev.Display
		spec.Brightness = stats.Clamp(spec.Brightness*chunk.BrightnessScale, 0, 1)
		actualW, err := display.PlaybackPower(spec, cs)
		if err != nil {
			return res, fmt.Errorf("client: power model: %w", err)
		}
		// The edge estimates the untransformed power p_{n,m}(kappa) for
		// this device and ships it with the chunk; the difference against
		// the locally measured draw is the realised reduction.
		plainW := chunk.PlainPowerW
		if !chunk.Transformed {
			plainW = actualW
		}
		watched := c.dev.Watch(chunk.DurationSec, actualW)
		res.ChunksPlayed++
		res.WatchedSec += watched
		res.EnergyJ += actualW * watched
		res.UntransformedJ += plainW * watched
		if chunk.Transformed && plainW > 0 {
			reductions = append(reductions, (plainW-actualW)/plainW)
		}
	}
	if len(reductions) > 0 {
		res.MeanReduction = stats.Mean(reductions)
		if _, err := c.Observe(res.MeanReduction); err != nil {
			return res, err
		}
	}
	return res, nil
}

func (c *Client) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: marshal: %w", err)
	}
	return c.withRetry(func() (*http.Response, error) {
		return c.http.Post(c.base+path, "application/json", bytes.NewReader(buf))
	}, "POST "+path, out)
}

func (c *Client) get(path string, out any) error {
	return c.withRetry(func() (*http.Response, error) {
		return c.http.Get(c.base + path)
	}, "GET "+path, out)
}

// withRetry runs the request, retrying transport failures, 5xx
// responses and shed (429) requests with exponential backoff when the
// client was built with WithRetries. A server Retry-After hint
// replaces the computed backoff for that attempt; the circuit breaker
// and retry budget (when configured) gate every attempt.
func (c *Client) withRetry(do func() (*http.Response, error), label string, out any) error {
	delay := c.backoff
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if c.budget != nil && !c.budget.spend() {
				return fmt.Errorf("client: %s: retry budget exhausted: %w", label, lastErr)
			}
			time.Sleep(delay)
			delay *= 2
		}
		if c.breaker != nil {
			if err := c.breaker.allow(); err != nil {
				if lastErr != nil {
					return fmt.Errorf("%w (last error: %w)", err, lastErr)
				}
				return err
			}
		}
		resp, err := do()
		if err != nil {
			lastErr = fmt.Errorf("client: %s: %w", label, err)
			c.recordOutcome(false)
			continue
		}
		if retriableStatus(resp.StatusCode) {
			if ra := retryAfter(resp); ra > 0 {
				delay = ra
			}
			lastErr = decode(resp, out)
			resp.Body.Close()
			c.recordOutcome(false)
			continue
		}
		err = decode(resp, out)
		resp.Body.Close()
		// The server answered and was not failing: a 4xx is the
		// caller's problem, not the edge's health.
		c.recordOutcome(true)
		if c.budget != nil && err == nil {
			c.budget.earn()
		}
		return err
	}
	return lastErr
}

// retriableStatus: server faults and shedding; never other 4xx.
func retriableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

func (c *Client) recordOutcome(success bool) {
	if c.breaker != nil {
		c.breaker.record(success)
	}
}

// decode parses a response: 200 bodies into out, everything else into
// a typed *APIError carrying the v1 envelope's code and retryability
// (code "unknown" when the body was not an envelope).
func decode(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{
			Status:     resp.StatusCode,
			Code:       "unknown",
			Message:    fmt.Sprintf("status %d", resp.StatusCode),
			Retryable:  retriableStatus(resp.StatusCode),
			RetryAfter: retryAfter(resp),
		}
		var env server.ErrorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
			apiErr.Code = env.Error.Code
			apiErr.Message = env.Error.Message
			apiErr.Retryable = env.Error.Retryable
		}
		return apiErr
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode: %w", err)
	}
	return nil
}

// Package client implements the device side of the LPVS edge protocol:
// reporting status, fetching decisions and chunk metadata, simulating
// playback with the local display power model, and feeding realised
// power reductions back to the edge. Its transport layer — the Caller
// in options.go — is shared with the router's shard-forwarding client,
// so both surfaces are configured through one Options API.
package client

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"lpvs/internal/device"
	"lpvs/internal/display"
	"lpvs/internal/server"
	"lpvs/internal/stats"
	"lpvs/internal/wire"
)

// Client talks to one LPVS edge daemon on behalf of one device.
type Client struct {
	call    *Caller
	dev     *device.Device
	channel string // stream the device watches; empty = the default

	// Codec negotiation (DESIGN.md §16): reports go out in the binary
	// wire format by default; a daemon that does not speak it (415, or
	// an old daemon's JSON-decode 400 on the binary body) flips the
	// client to JSON for good. wireBuf is the reused encode buffer, so
	// a steady-state reporter allocates no per-slot body.
	jsonOnly bool
	wireBuf  []byte
}

// SetChannel switches which of the edge's streams subsequent reports
// subscribe to (empty = the site's default stream).
func (c *Client) SetChannel(id string) { c.channel = id }

// New builds a client for the device against the daemon at baseURL.
// Pass nil for the default HTTP client (WithHTTPClient also sets it;
// the explicit parameter wins when non-nil).
func New(baseURL string, dev *device.Device, httpClient *http.Client, opts ...Option) (*Client, error) {
	if dev == nil {
		return nil, fmt.Errorf("client: nil device")
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if _, err := url.Parse(baseURL); err != nil {
		return nil, fmt.Errorf("client: bad base URL: %w", err)
	}
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	if httpClient != nil {
		o.HTTP = httpClient
	}
	return &Client{call: newCaller(baseURL, o), dev: dev, jsonOnly: o.JSONReports}, nil
}

// Device returns the client's device.
func (c *Client) Device() *device.Device { return c.dev }

// Caller exposes the client's underlying transport, so fleet-level
// helpers can ride the same retry/breaker/budget machinery for
// requests that are not tied to this device.
func (c *Client) Caller() *Caller { return c.call }

// ReportRequest builds the device's slot report in wire form — what
// Report sends, exposed so batching callers (Fleet) can aggregate.
func (c *Client) ReportRequest() server.ReportRequest {
	return server.ReportRequest{
		DeviceID:         c.dev.ID,
		ChannelID:        c.channel,
		DisplayType:      c.dev.Display.Type.String(),
		Width:            c.dev.Display.Resolution.Width,
		Height:           c.dev.Display.Resolution.Height,
		DiagonalInch:     c.dev.Display.DiagonalInch,
		Brightness:       c.dev.Display.Brightness,
		EnergyFrac:       c.dev.EnergyFrac(),
		BatteryCapacityJ: c.dev.Battery.CapacityJ,
		BasePowerW:       c.dev.BasePowerW,
	}
}

// Report sends the device's slot report, binary-framed unless the
// client has negotiated down to JSON (see WithJSONReports and
// wireFallback).
func (c *Client) Report() (server.ReportResponse, error) {
	var resp server.ReportResponse
	req := c.ReportRequest()
	if !c.jsonOnly {
		buf, err := wire.AppendSingle(c.wireBuf[:0], &req)
		if err == nil {
			c.wireBuf = buf
			err = c.call.PostRaw("/v1/report", wire.ContentType, buf, &resp)
			if !wireFallback(err) {
				return resp, err
			}
			c.jsonOnly = true
		}
		// Unencodable report or a daemon without the codec: JSON below.
	}
	err := c.call.PostJSON("/v1/report", req, &resp)
	return resp, err
}

// ReportBatch posts many reports as one body — one round-trip for a
// whole co-located fleet instead of one per device — binary-framed
// unless the client has negotiated down to JSON. The reports need not
// belong to this client's device; the call just rides its transport,
// retry and breaker machinery. Per-item failures do not error the call
// — inspect the response's Results (rejections only on the binary
// codec).
func (c *Client) ReportBatch(reqs []server.ReportRequest) (server.BatchReportResponse, error) {
	var resp server.BatchReportResponse
	if !c.jsonOnly {
		buf, err := wire.AppendBatch(c.wireBuf[:0], reqs)
		if err == nil {
			c.wireBuf = buf
			err = c.call.PostRaw("/v1/report", wire.ContentType, buf, &resp)
			if !wireFallback(err) {
				return resp, err
			}
			c.jsonOnly = true
		}
	}
	err := c.call.PostJSON("/v1/report", reqs, &resp)
	return resp, err
}

// wireFallback reports whether a binary report's failure means the
// daemon does not speak the codec: a 415 (version skew on a daemon
// that knows the Content-Type), or the JSON-decode 400 an old daemon
// produces when it tries to parse the binary body as JSON. Envelope
// validation 400s (bad display, unknown channel) are NOT fallbacks —
// resending them as JSON would fail identically.
func wireFallback(err error) bool {
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	if apiErr.Status == http.StatusUnsupportedMediaType {
		return true
	}
	return apiErr.Status == http.StatusBadRequest &&
		apiErr.Code == server.CodeBadRequest &&
		strings.HasPrefix(apiErr.Message, "decode")
}

// Decision fetches the device's current transform decision.
func (c *Client) Decision() (server.DecisionResponse, error) {
	var resp server.DecisionResponse
	err := c.call.GetJSON("/v1/decision?device="+url.QueryEscape(c.dev.ID), &resp)
	return resp, err
}

// Chunk fetches metadata of one chunk in the device's current slot.
func (c *Client) Chunk(index int) (server.ChunkResponse, error) {
	var resp server.ChunkResponse
	err := c.call.GetJSON("/v1/chunk?device="+url.QueryEscape(c.dev.ID)+"&index="+strconv.Itoa(index), &resp)
	return resp, err
}

// Playlist fetches the manifest of the device's current slot.
func (c *Client) Playlist() (server.PlaylistResponse, error) {
	var resp server.PlaylistResponse
	err := c.call.GetJSON("/v1/playlist?device="+url.QueryEscape(c.dev.ID), &resp)
	return resp, err
}

// PlayCurrentSlot fetches the slot manifest and plays every chunk in it
// — the full player loop without the caller knowing the slot geometry.
func (c *Client) PlayCurrentSlot() (SlotResult, error) {
	pl, err := c.Playlist()
	if err != nil {
		return SlotResult{}, err
	}
	return c.PlaySlot(pl.Chunks)
}

// Observe reports the realised mean power reduction of the played slot.
func (c *Client) Observe(reduction float64) (server.ObserveResponse, error) {
	var resp server.ObserveResponse
	err := c.call.PostJSON("/v1/observe", server.ObserveRequest{DeviceID: c.dev.ID, Reduction: reduction}, &resp)
	return resp, err
}

// SlotResult summarises one played slot on the client.
type SlotResult struct {
	ChunksPlayed   int
	WatchedSec     float64
	EnergyJ        float64
	UntransformedJ float64
	MeanReduction  float64
	Transformed    bool
}

// PlaySlot plays chunk metadata [0, chunks) of the current slot on the
// local device: it derives the display power from the served content
// statistics (honouring the backlight-scale instruction), drains the
// battery, and — when the slot was transformed — feeds the realised
// reduction back to the edge.
func (c *Client) PlaySlot(chunks int) (SlotResult, error) {
	var res SlotResult
	dec, err := c.Decision()
	if err != nil {
		return res, err
	}
	res.Transformed = dec.Transform
	var reductions []float64
	for k := 0; k < chunks; k++ {
		if c.dev.State != device.Watching {
			break
		}
		chunk, err := c.Chunk(k)
		if err != nil {
			return res, err
		}
		cs := display.ContentStats{
			MeanLuma: chunk.MeanLuma,
			PeakLuma: chunk.PeakLuma,
			MeanR:    chunk.MeanR,
			MeanG:    chunk.MeanG,
			MeanB:    chunk.MeanB,
		}
		spec := c.dev.Display
		spec.Brightness = stats.Clamp(spec.Brightness*chunk.BrightnessScale, 0, 1)
		actualW, err := display.PlaybackPower(spec, cs)
		if err != nil {
			return res, fmt.Errorf("client: power model: %w", err)
		}
		// The edge estimates the untransformed power p_{n,m}(kappa) for
		// this device and ships it with the chunk; the difference against
		// the locally measured draw is the realised reduction.
		plainW := chunk.PlainPowerW
		if !chunk.Transformed {
			plainW = actualW
		}
		watched := c.dev.Watch(chunk.DurationSec, actualW)
		res.ChunksPlayed++
		res.WatchedSec += watched
		res.EnergyJ += actualW * watched
		res.UntransformedJ += plainW * watched
		if chunk.Transformed && plainW > 0 {
			reductions = append(reductions, (plainW-actualW)/plainW)
		}
	}
	if len(reductions) > 0 {
		res.MeanReduction = stats.Mean(reductions)
		if _, err := c.Observe(res.MeanReduction); err != nil {
			return res, err
		}
	}
	return res, nil
}

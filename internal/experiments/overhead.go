package experiments

import (
	"fmt"
	"strings"

	"lpvs/internal/qoe"
	"lpvs/internal/stats"
	"lpvs/internal/video"
)

// OverheadRow is one scheduling-mode x delay cell.
type OverheadRow struct {
	GroupSize       int
	SchedSeconds    float64
	AheadRebufferS  float64
	InlineRebufferS float64
	InlineStartupS  float64
	AheadStartupS   float64
}

// OverheadResult reproduces the section VII-D argument: one-slot-ahead
// scheduling leaves conventional QoE (freezing, startup delay)
// untouched, and stays safe as long as a decision finishes within one
// slot.
type OverheadResult struct {
	Rows []OverheadRow
}

// Overhead measures real scheduler times at growing cluster sizes and
// feeds them into the playout-buffer simulation under both scheduling
// placements.
func Overhead(seed int64) (OverheadResult, error) {
	fig10, err := Fig10(EvalConfig{Seed: seed, Genre: video.Gaming}, []int{1000, 3000, 5000})
	if err != nil {
		return OverheadResult{}, err
	}
	// A 2-hour 2.5 Mbps session through a playout buffer.
	vcfg := video.DefaultGenConfig("qoe", video.Gaming, 720)
	v, err := video.Generate(stats.NewRNG(seed), vcfg)
	if err != nil {
		return OverheadResult{}, err
	}
	var res OverheadResult
	for _, row := range fig10.Rows {
		// Stress the architecture: charge 100x the measured decision
		// time, emulating the paper's CPLEX-class scheduler on the same
		// cluster (their fit predicts ~55 ms/device).
		delay := row.Seconds * 100
		ahead, inline, err := qoe.CompareModes(seed, qoe.DefaultBufferConfig(), v.Chunks, delay)
		if err != nil {
			return OverheadResult{}, err
		}
		res.Rows = append(res.Rows, OverheadRow{
			GroupSize:       row.GroupSize,
			SchedSeconds:    delay,
			AheadRebufferS:  ahead.RebufferSec,
			InlineRebufferS: inline.RebufferSec,
			AheadStartupS:   ahead.StartupDelaySec,
			InlineStartupS:  inline.StartupDelaySec,
		})
	}
	return res, nil
}

// Render implements the text report.
func (r OverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("Overhead — scheduling placement vs conventional QoE (paper VII-D)\n")
	b.WriteString("N      sched-time  rebuffer(ahead)  rebuffer(inline)  startup(ahead)  startup(inline)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6d %8.2fs %12.1fs %16.1fs %14.1fs %15.1fs\n",
			row.GroupSize, row.SchedSeconds,
			row.AheadRebufferS, row.InlineRebufferS,
			row.AheadStartupS, row.InlineStartupS)
	}
	b.WriteString("one-slot-ahead keeps scheduling off the chunk path: zero added stalls\n")
	return b.String()
}

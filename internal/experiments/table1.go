package experiments

import (
	"fmt"
	"strings"

	"lpvs/internal/display"
	"lpvs/internal/stats"
	"lpvs/internal/transform"
	"lpvs/internal/video"
)

// Table1Row is the measured saving range of one strategy against its
// published Table I range.
type Table1Row struct {
	Strategy    transform.Strategy
	MeasuredLo  float64
	MeasuredHi  float64
	MeasuredAvg float64
}

// Table1Result collects the full strategy review.
type Table1Result struct {
	Rows []Table1Row
	// AvgLo / AvgHi are the measured catalogue-wide bounds (paper:
	// 13%-49%).
	AvgLo, AvgHi float64
}

// Table1 runs every transform strategy over a mixed-genre content corpus
// across the tolerance range and measures the realised display-power
// saving span.
func Table1(seed int64) (Table1Result, error) {
	rng := stats.NewRNG(seed)
	// Mixed corpus: chunks of every genre.
	var corpus []display.ContentStats
	for _, g := range video.AllGenres() {
		v, err := video.Generate(rng.Fork(), video.DefaultGenConfig("t1", g, 40))
		if err != nil {
			return Table1Result{}, err
		}
		for _, c := range v.Chunks {
			corpus = append(corpus, c.Stats)
		}
	}

	var res Table1Result
	for _, s := range transform.Catalogue() {
		spec := display.Spec{
			Type:         s.Target,
			Resolution:   display.Res1080p,
			DiagonalInch: 6,
			Brightness:   0.65,
		}
		row := Table1Row{Strategy: s, MeasuredLo: 1}
		var sum float64
		var n int
		for _, c := range corpus {
			for _, tol := range []float64{0.1, 0.4, 0.7, 1.0} {
				tr, err := s.Apply(spec, c, tol)
				if err != nil {
					return Table1Result{}, err
				}
				saving, err := transform.RealizedSaving(spec, c, tr)
				if err != nil {
					return Table1Result{}, err
				}
				if saving < row.MeasuredLo {
					row.MeasuredLo = saving
				}
				if saving > row.MeasuredHi {
					row.MeasuredHi = saving
				}
				sum += saving
				n++
			}
		}
		row.MeasuredAvg = sum / float64(n)
		res.Rows = append(res.Rows, row)
		res.AvgLo += row.MeasuredLo
		res.AvgHi += row.MeasuredHi
	}
	res.AvgLo /= float64(len(res.Rows))
	res.AvgHi /= float64(len(res.Rows))
	return res, nil
}

// Render implements the text report.
func (r Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table I — display power-saving strategies (measured vs published)\n")
	fmt.Fprintf(&b, "%-5s %-42s %-14s %-14s %s\n", "Type", "Strategy", "Published", "Measured", "Avg")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-5s %-42s %3.0f%%-%3.0f%%      %3.0f%%-%3.0f%%      %3.0f%%\n",
			row.Strategy.Target, row.Strategy.Name,
			100*row.Strategy.SavingLo, 100*row.Strategy.SavingHi,
			100*row.MeasuredLo, 100*row.MeasuredHi, 100*row.MeasuredAvg)
	}
	fmt.Fprintf(&b, "catalogue average: %.0f%%-%.0f%% (paper: 13%%-49%%)\n", 100*r.AvgLo, 100*r.AvgHi)
	return b.String()
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func firstLine(t *testing.T, buf *bytes.Buffer) string {
	t.Helper()
	line, err := buf.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(line)
}

func TestFig1CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := firstLine(t, &buf); got != "display_type,component,power_w" {
		t.Fatalf("header %q", got)
	}
}

func TestFig2CSV(t *testing.T) {
	r, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 101 { // header + 100 levels
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestTable1CSV(t *testing.T) {
	r, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "backlight") {
		t.Fatal("missing strategy rows")
	}
}

func TestFig5CSV(t *testing.T) {
	r, err := Fig5(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := firstLine(t, &buf); got != "duration_min,sessions" {
		t.Fatalf("header %q", got)
	}
}

func TestEvaluationCSVs(t *testing.T) {
	cfg := evalCfg()
	f7, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f7.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "group_size,") {
		t.Fatal("fig7 header")
	}

	f8, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f8.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(f8.Cells) {
		t.Fatalf("fig8 lines = %d", len(lines))
	}

	f10, err := Fig10(cfg, []int{500, 1000})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f10.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "r2,") {
		t.Fatal("fig10 fit rows missing")
	}
}

func TestFig9AndAblationCSV(t *testing.T) {
	r := Fig9Result{CohortSize: 3, BaselineMin: 40, TreatedMin: 55, Gain: 0.375}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "with_lpvs,55") {
		t.Fatalf("fig9 csv: %s", buf.String())
	}

	ab := AblationResult{Name: "x", Rows: []AblationRow{{Variant: "a", EnergySaving: 0.1}}}
	buf.Reset()
	if err := ab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "variant,") {
		t.Fatal("ablation header")
	}

	tw := TraceWideResult{Channels: 2, Devices: 10, EnergySaving: 0.3}
	buf.Reset()
	if err := tw.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "energy_saving,0.3") {
		t.Fatal("trace-wide csv")
	}
}

func TestRendersNonEmpty(t *testing.T) {
	// Smoke the render paths not exercised elsewhere.
	r9 := Fig9Result{CohortSize: 1, BaselineMin: 40, TreatedMin: 50, Gain: 0.25}
	if !strings.Contains(r9.Render(), "42.3") {
		t.Fatal("fig9 render must cite the paper value")
	}
	r10 := Fig10Result{Rows: []Fig10Row{{GroupSize: 100, Seconds: 0.01}}}
	if !strings.Contains(r10.Render(), "linear fit") {
		t.Fatal("fig10 render")
	}
}

package experiments

import (
	"strings"
	"testing"

	"lpvs/internal/video"
)

func evalCfg() EvalConfig {
	cfg := DefaultEvalConfig()
	cfg.Slots = 12 // keep the test suite quick
	return cfg
}

func TestFig1DisplayDominates(t *testing.T) {
	r := Fig1()
	if len(r.LCD) == 0 || len(r.OLED) == 0 {
		t.Fatal("empty breakdowns")
	}
	if !strings.Contains(r.Render(), "display share") {
		t.Fatal("render incomplete")
	}
}

func TestFig2HeadlineNumbers(t *testing.T) {
	r, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 2032 {
		t.Fatalf("N = %d", r.N)
	}
	if r.LBARate < 0.88 || r.LBARate > 0.95 {
		t.Fatalf("LBA rate %v, want near 0.9188", r.LBARate)
	}
	if r.Curve.AtLevel(20) < 0.5 || r.Curve.AtLevel(20) > 0.9 {
		t.Fatalf("curve at 20%% = %v, want near 0.72", r.Curve.AtLevel(20))
	}
	if !strings.Contains(r.Render(), "LBA incidence") {
		t.Fatal("render incomplete")
	}
}

func TestTable1WithinPublishedBands(t *testing.T) {
	r, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 11 {
		t.Fatalf("%d rows, want 11", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Measured savings must stay within (or very near) the published
		// range; the OLED driver floor can push the bottom slightly
		// below.
		if row.MeasuredLo < row.Strategy.SavingLo-0.10 {
			t.Errorf("%q: measured lo %v far below published %v",
				row.Strategy.Name, row.MeasuredLo, row.Strategy.SavingLo)
		}
		if row.MeasuredHi > row.Strategy.SavingHi+0.02 {
			t.Errorf("%q: measured hi %v above published %v",
				row.Strategy.Name, row.MeasuredHi, row.Strategy.SavingHi)
		}
		if row.MeasuredAvg <= 0 {
			t.Errorf("%q: no average saving", row.Strategy.Name)
		}
	}
	if r.AvgLo > r.AvgHi {
		t.Fatal("inverted catalogue bounds")
	}
}

func TestTable2Renders(t *testing.T) {
	out := Table2(1).Render()
	for _, want := range []string{"Gender", "Occupation", "N = 2032"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFig5PopulationAndShape(t *testing.T) {
	r, err := Fig5(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Channels != 1566 || r.Sessions != 4761 {
		t.Fatalf("population %d/%d, want 1566/4761", r.Channels, r.Sessions)
	}
	if r.Median < 60 || r.Median > 150 {
		t.Fatalf("median %v min", r.Median)
	}
}

func TestFig7PaperShape(t *testing.T) {
	r, err := Fig7(evalCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows, want 6 (sizes 50-100)", len(r.Rows))
	}
	// Paper: ~35% average energy saving, ~7% anxiety reduction.
	if r.AvgSaving < 0.28 || r.AvgSaving > 0.45 {
		t.Fatalf("avg saving %v outside the paper band", r.AvgSaving)
	}
	if r.AvgAnxiety < 0.02 || r.AvgAnxiety > 0.15 {
		t.Fatalf("avg anxiety reduction %v outside the paper band", r.AvgAnxiety)
	}
	if r.MaxSaving < r.AvgSaving || r.MaxAnxiety < r.AvgAnxiety {
		t.Fatal("max below average")
	}
}

func TestFig8PaperShape(t *testing.T) {
	cfg := evalCfg()
	r, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Energy saving decreases with N for every lambda.
	for _, l := range r.Lambdas {
		first, _ := r.Cell(r.Sizes[0], l)
		last, _ := r.Cell(r.Sizes[len(r.Sizes)-1], l)
		if last.EnergySaving >= first.EnergySaving {
			t.Fatalf("lambda=%v: saving did not decrease with N (%v -> %v)",
				l, first.EnergySaving, last.EnergySaving)
		}
		if last.AnxietyReduction >= first.AnxietyReduction {
			t.Fatalf("lambda=%v: anxiety reduction did not decrease with N", l)
		}
	}
	// Larger lambda must not save more energy, and must not reduce
	// anxiety less, at fixed N (paper's Fig. 8 trade-off).
	for _, n := range r.Sizes {
		lo, _ := r.Cell(n, r.Lambdas[0])
		hi, _ := r.Cell(n, r.Lambdas[len(r.Lambdas)-1])
		if hi.EnergySaving > lo.EnergySaving+0.01 {
			t.Fatalf("N=%d: higher lambda saved more energy", n)
		}
		if hi.AnxietyReduction < lo.AnxietyReduction-0.01 {
			t.Fatalf("N=%d: higher lambda reduced anxiety less", n)
		}
	}
}

func TestFig9PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("8-hour emulations")
	}
	r, err := Fig9(evalCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.CohortSize == 0 {
		t.Fatal("empty cohort")
	}
	if r.TreatedMin <= r.BaselineMin {
		t.Fatal("LPVS did not extend TPV")
	}
	// Paper: +38.8%; accept the 20-50% band.
	if r.Gain < 0.20 || r.Gain > 0.55 {
		t.Fatalf("TPV gain %v outside [0.20, 0.55]", r.Gain)
	}
}

func TestFig10LinearScaling(t *testing.T) {
	cfg := evalCfg()
	r, err := Fig10(cfg, []int{500, 1000, 2000, 3000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Fit.Slope <= 0 {
		t.Fatalf("runtime not growing with N: slope %v", r.Fit.Slope)
	}
	// Wall-clock measurements on a shared test machine are noisy; the
	// dedicated lpvs-bench run reports R^2 > 0.99.
	if r.Fit.R2 < 0.75 {
		t.Fatalf("runtime not linear: R^2 = %v", r.Fit.R2)
	}
	if r.MaxDevicesPerSlot < 5000 {
		t.Fatalf("capacity %d devices per slot, paper reports >5000", r.MaxDevicesPerSlot)
	}
}

func TestAblationSwapHelpsAnxiety(t *testing.T) {
	r, err := AblationSwap(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatal("want 2 variants")
	}
	full, phase1 := r.Rows[0], r.Rows[1]
	if full.AnxietyReduction < phase1.AnxietyReduction-0.01 {
		t.Fatalf("phase-2 lowered anxiety reduction: %v vs %v",
			full.AnxietyReduction, phase1.AnxietyReduction)
	}
}

func TestAblationBayesRuns(t *testing.T) {
	r, err := AblationBayes(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.EnergySaving <= 0 {
			t.Fatalf("%s: no saving", row.Variant)
		}
	}
}

func TestAblationSolverOrdering(t *testing.T) {
	r, err := AblationSolver(1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Variant] = row
	}
	lpvs := byName["lpvs two-phase"]
	random := byName["random"]
	if lpvs.EnergySaving < random.EnergySaving-0.01 {
		t.Fatalf("LPVS (%v) did not beat random (%v) on energy", lpvs.EnergySaving, random.EnergySaving)
	}
}

func TestAblationSlotLength(t *testing.T) {
	r, err := AblationSlotLength(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatal("want 3 slot lengths")
	}
	if !strings.Contains(r.Render(), "slot=300s") {
		t.Fatal("render incomplete")
	}
}

func TestTraceWideAggregates(t *testing.T) {
	r, err := TraceWide(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Channels == 0 || r.Channels > 8 {
		t.Fatalf("channels = %d", r.Channels)
	}
	if r.Devices == 0 {
		t.Fatal("no devices")
	}
	if r.EnergySaving <= 0.1 {
		t.Fatalf("trace-wide saving %v", r.EnergySaving)
	}
	if !strings.Contains(r.Render(), "virtual cluster") {
		t.Fatal("render incomplete")
	}
}

func TestBehaviorEstimation(t *testing.T) {
	r, err := Behavior(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.ThresholdMAE > 6 {
		t.Fatalf("threshold MAE %v", r.ThresholdMAE)
	}
	if r.CurveMaxDelta > 0.12 {
		t.Fatalf("curve deviation %v", r.CurveMaxDelta)
	}
	if !strings.Contains(r.Render(), "charging log") {
		t.Fatal("render incomplete")
	}
}

func TestOverheadOneSlotAheadFree(t *testing.T) {
	r, err := Overhead(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.AheadRebufferS != 0 {
			t.Fatalf("one-slot-ahead stalled at N=%d", row.GroupSize)
		}
		if row.InlineStartupS < row.AheadStartupS {
			t.Fatalf("inline startup cheaper than ahead at N=%d", row.GroupSize)
		}
	}
	if !strings.Contains(r.Render(), "one-slot-ahead") {
		t.Fatal("render incomplete")
	}
}

func TestAutoDimComparison(t *testing.T) {
	r, err := AutoDim(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	lpvsRow, dimRow := r.Rows[0], r.Rows[1]
	if lpvsRow.EnergySaving <= dimRow.EnergySaving {
		t.Fatalf("LPVS (%v) must out-save auto-dim (%v)",
			lpvsRow.EnergySaving, dimRow.EnergySaving)
	}
	if lpvsRow.QualityLoss >= dimRow.QualityLoss {
		t.Fatalf("LPVS per-chunk loss (%v) must undercut auto-dim (%v)",
			lpvsRow.QualityLoss, dimRow.QualityLoss)
	}
	if !strings.Contains(r.Render(), "auto-dim") {
		t.Fatal("render incomplete")
	}
}

func TestValidationForecastTight(t *testing.T) {
	r, err := Validation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MAE <= 0 || row.MAE > 0.02 {
			t.Fatalf("%s: MAE %v outside (0, 0.02]", row.Scenario, row.MAE)
		}
	}
	full, partial := r.Rows[0].MAE, r.Rows[1].MAE
	if partial <= full {
		t.Fatalf("partial windows (%v) should forecast worse than full (%v)", partial, full)
	}
	if !strings.Contains(r.Render(), "Model validation") {
		t.Fatal("render incomplete")
	}
}

func TestSyntheticCluster(t *testing.T) {
	reqs, err := syntheticCluster(1, 50, video.Gaming)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 50 {
		t.Fatalf("%d requests, want 50", len(reqs))
	}
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

package experiments

import (
	"fmt"
	"strings"

	"lpvs/internal/emu"
	"lpvs/internal/scheduler"
)

// AblationResult compares design variants of LPVS on the same workload.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// AblationRow is one variant's headline metrics.
type AblationRow struct {
	Variant          string
	EnergySaving     float64
	AnxietyReduction float64
	SchedSeconds     float64
}

// Render implements the text report.
func (r AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — %s\n", r.Name)
	fmt.Fprintf(&b, "%-22s %-14s %-18s %s\n", "variant", "energy-saving", "anxiety-reduction", "sched-time")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %6.2f%%        %6.2f%%            %.3fs\n",
			row.Variant, 100*row.EnergySaving, 100*row.AnxietyReduction, row.SchedSeconds)
	}
	return b.String()
}

// ablationWorkload is the shared limited-capacity scenario: anxious
// enough that Phase-2 matters, constrained enough that selection
// matters.
func ablationWorkload(seed int64) emu.Config {
	cfg := emu.Config{
		Seed:          seed,
		GroupSize:     150,
		Slots:         12,
		Lambda:        5,
		ServerStreams: 40,
	}
	cfg.Device.GiveUpSampler = giveUpSampler(seed)
	return cfg
}

func runVariant(name string, cfg emu.Config, policy scheduler.Policy) (AblationRow, error) {
	c, err := emu.Compare(cfg, policy)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Variant:          name,
		EnergySaving:     c.EnergySavingRatio(),
		AnxietyReduction: c.AnxietyReduction(),
		SchedSeconds:     c.Treated.SchedSeconds,
	}, nil
}

// AblationSwap measures the contribution of Phase-2 anxiety swapping.
func AblationSwap(seed int64) (AblationResult, error) {
	res := AblationResult{Name: "phase-2 swapping"}
	on := ablationWorkload(seed)
	row, err := runVariant("two-phase (full)", on, nil)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)

	off := ablationWorkload(seed)
	off.DisableSwap = true
	row, err = runVariant("phase-1 only", off, nil)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// AblationBayes measures Bayesian gamma learning against planning with
// the fixed prior midpoint.
func AblationBayes(seed int64) (AblationResult, error) {
	res := AblationResult{Name: "Bayesian gamma learning"}
	learned := ablationWorkload(seed)
	row, err := runVariant("bayesian gamma", learned, nil)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)

	fixed := ablationWorkload(seed)
	fixed.FixedGamma = 0.31 // the prior midpoint, never updated
	row, err = runVariant("fixed gamma=0.31", fixed, nil)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// AblationSolver compares the exact Phase-1 solve against the greedy
// knapsack and the joint single-knapsack extension, plus the paper's
// strawman baselines.
func AblationSolver(seed int64) (AblationResult, error) {
	res := AblationResult{Name: "selection policies"}
	cfg := ablationWorkload(seed)

	row, err := runVariant("lpvs two-phase", cfg, nil)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)

	greedyCfg := cfg
	greedyCfg.ExactThreshold = 1 // force the greedy knapsack path
	row, err = runVariant("lpvs greedy phase-1", greedyCfg, nil)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)

	scfg, err := emu.SchedulerConfig(cfg)
	if err != nil {
		return res, err
	}
	joint, err := scheduler.NewJointKnapsackPolicy(scfg)
	if err != nil {
		return res, err
	}
	row, err = runVariant("joint knapsack", cfg, joint)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)

	random, err := scheduler.NewRandomPolicy(scfg, seed)
	if err != nil {
		return res, err
	}
	row, err = runVariant("random", cfg, random)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)

	battery, err := scheduler.NewGreedyBatteryPolicy(scfg)
	if err != nil {
		return res, err
	}
	row, err = runVariant("greedy-battery", cfg, battery)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// AblationEngine compares the calibrated aggregate-statistics transform
// engine against the per-pixel keyframe engine it approximates.
func AblationEngine(seed int64) (AblationResult, error) {
	res := AblationResult{Name: "transform engine (aggregate stats vs per-pixel)"}
	agg := ablationWorkload(seed)
	row, err := runVariant("aggregate stats", agg, nil)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)

	px := ablationWorkload(seed)
	px.UseFrames = true
	row, err = runVariant("per-pixel frames", px, nil)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// AutoDimRow extends the ablation row with quality-loss and retention
// metrics for the auto-dim comparison.
type AutoDimRow struct {
	Variant          string
	EnergySaving     float64
	AnxietyReduction float64
	QualityLoss      float64
	TPVGain          float64
}

// AutoDimResult compares LPVS against the obvious client-side
// alternative: the OS power saver that dims the screen below 20%
// battery without compensation.
type AutoDimResult struct {
	Rows []AutoDimRow
}

// Render implements the text report.
func (r AutoDimResult) Render() string {
	var b strings.Builder
	b.WriteString("Comparison — LPVS vs OS auto-dim power saver\n")
	fmt.Fprintf(&b, "%-18s %-14s %-18s %-22s %s\n",
		"variant", "energy-saving", "anxiety-reduction", "loss-when-affected", "low-batt TPV gain")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %6.2f%%        %6.2f%%            %6.3f                %+6.1f%%\n",
			row.Variant, 100*row.EnergySaving, 100*row.AnxietyReduction,
			row.QualityLoss, 100*row.TPVGain)
	}
	b.WriteString("auto-dim only acts below 20% battery, where it cuts luminance hard and\n")
	b.WriteString("uncompensated; LPVS saves several times more energy across the whole\n")
	b.WriteString("cluster at a lower per-chunk distortion\n")
	return b.String()
}

// AutoDim runs the comparison on a sufficient-capacity cluster of mixed
// batteries over a long stream, so the low-battery cohort is exercised.
func AutoDim(seed int64) (AutoDimResult, error) {
	base := emu.Config{
		Seed:          seed,
		GroupSize:     80,
		Slots:         48,
		Lambda:        1,
		ServerStreams: -1,
	}
	base.Device.GiveUpSampler = giveUpSampler(seed)

	var res AutoDimResult
	// LPVS.
	lpvsCfg := base
	cmp, err := emu.Compare(lpvsCfg, nil)
	if err != nil {
		return res, err
	}
	_, _, gain := cmp.TPVGain()
	res.Rows = append(res.Rows, AutoDimRow{
		Variant:          "lpvs",
		EnergySaving:     cmp.EnergySavingRatio(),
		AnxietyReduction: cmp.AnxietyReduction(),
		QualityLoss:      cmp.Treated.MeanAffectedQualityLoss(),
		TPVGain:          gain,
	})
	// OS auto-dim, no LPVS: the treated run is no-transform with the
	// power saver on; the paired baseline inside Compare shares the
	// config, so run it manually against the plain baseline.
	dimCfg := base
	dimCfg.AutoDimBelow = 0.2
	dimEmu, err := emu.New(dimCfg, scheduler.NoTransform{})
	if err != nil {
		return res, err
	}
	dimRun, err := dimEmu.Run()
	if err != nil {
		return res, err
	}
	dimGainBase, dimGainTreated := cohortTPV(cmp.Baseline, dimRun)
	dimGain := 0.0
	if dimGainBase > 0 {
		dimGain = (dimGainTreated - dimGainBase) / dimGainBase
	}
	res.Rows = append(res.Rows, AutoDimRow{
		Variant:          "os auto-dim",
		EnergySaving:     dimRun.EnergySavingRatio(),
		AnxietyReduction: anxietyReduction(cmp.Baseline, dimRun),
		QualityLoss:      dimRun.MeanAffectedQualityLoss(),
		TPVGain:          dimGain,
	})
	return res, nil
}

// cohortTPV evaluates the low-battery cohort (low start, any policy)
// across two runs of the same fleet.
func cohortTPV(baseline, treated *emu.RunResult) (baseMin, treatedMin float64) {
	cohort := func(i int) bool { return treated.LowBatteryStart[i] }
	return baseline.MeanTPVMin(cohort), treated.MeanTPVMin(cohort)
}

func anxietyReduction(baseline, treated *emu.RunResult) float64 {
	b := baseline.MeanAnxiety()
	if b <= 0 {
		return 0
	}
	return (b - treated.MeanAnxiety()) / b
}

// AblationSlotLength probes the scheduling-interval choice the paper
// fixes at 5 minutes (Remark 1).
func AblationSlotLength(seed int64) (AblationResult, error) {
	res := AblationResult{Name: "scheduling interval"}
	for _, slotSec := range []float64{60, 300, 600} {
		cfg := ablationWorkload(seed)
		cfg.SlotSec = slotSec
		// Keep total emulated time roughly constant.
		cfg.Slots = int(3600 / slotSec)
		row, err := runVariant(fmt.Sprintf("slot=%ds", int(slotSec)), cfg, nil)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

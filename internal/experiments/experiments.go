// Package experiments regenerates every table and figure of the paper's
// evaluation (section VII plus the motivating figures), mapping each to
// the substrate packages that implement it. Each experiment returns a
// typed result with a Render method producing the text report the
// lpvs-bench binary prints; the repository-level benchmarks reuse the
// same entry points.
//
// Index (see DESIGN.md for the full mapping):
//
//	Fig1    component power breakdown            internal/display
//	Fig2    LBA anxiety curve                    internal/survey + anxiety
//	Table1  transform saving ranges              internal/transform
//	Table2  survey demographics                  internal/survey
//	Fig5    session duration histogram           internal/trace
//	Fig7    sufficient-capacity energy/anxiety   internal/emu
//	Fig8    limited-capacity sweep over lambda   internal/emu
//	Fig9    low-battery time per viewer          internal/emu
//	Fig10   scheduler runtime scaling            internal/scheduler
package experiments

import (
	"fmt"
	"strings"

	"lpvs/internal/anxiety"
	"lpvs/internal/display"
	"lpvs/internal/stats"
	"lpvs/internal/survey"
	"lpvs/internal/trace"
)

// Fig1Result is the per-component playback power of both display types.
type Fig1Result struct {
	LCD, OLED []display.Component
}

// Fig1 reproduces the motivating breakdown: the display dominates
// smartphone power during video playback.
func Fig1() Fig1Result {
	return Fig1Result{
		LCD:  display.ComponentBreakdown(display.LCD),
		OLED: display.ComponentBreakdown(display.OLED),
	}
}

// Render implements the text report.
func (r Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 1 — component power during video playback\n")
	b.WriteString(display.RenderBreakdown())
	fmt.Fprintf(&b, "display share: LCD %.1f%%, OLED %.1f%%\n",
		100*display.DisplayShare(display.LCD), 100*display.DisplayShare(display.OLED))
	return b.String()
}

// Fig2Result is the extracted anxiety curve together with survey
// headline statistics.
type Fig2Result struct {
	N           int
	LBARate     float64
	GiveUpAt10  float64
	GiveUpAt20  float64
	Curve       *anxiety.Curve
	CurveLevels []int // levels to print
}

// Fig2 runs the synthetic survey and extracts the LBA curve with the
// paper's four-step procedure.
func Fig2(seed int64) (Fig2Result, error) {
	cfg := survey.DefaultConfig()
	cfg.Seed = seed
	ds := survey.Generate(cfg)
	curve, err := anxiety.Extract(ds.ChargeThresholds())
	if err != nil {
		return Fig2Result{}, err
	}
	return Fig2Result{
		N:           ds.N(),
		LBARate:     ds.LBARate(),
		GiveUpAt10:  ds.GiveUpRateAt(10),
		GiveUpAt20:  ds.GiveUpRateAt(20),
		Curve:       curve,
		CurveLevels: []int{1, 5, 10, 15, 20, 25, 30, 40, 50, 60, 70, 80, 90, 100},
	}, nil
}

// Render implements the text report.
func (r Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — LBA curve from %d survey answers\n", r.N)
	fmt.Fprintf(&b, "LBA incidence: %.2f%% (paper: 91.88%%)\n", 100*r.LBARate)
	fmt.Fprintf(&b, "give-up at 20%%: %.1f%% (paper: >20%%); at 10%%: %.1f%% (paper: ~50%%)\n",
		100*r.GiveUpAt20, 100*r.GiveUpAt10)
	b.WriteString("battery level -> anxiety degree\n")
	for _, lv := range r.CurveLevels {
		anx := r.Curve.AtLevel(lv)
		bar := strings.Repeat("#", int(anx*50+0.5))
		fmt.Fprintf(&b, "  %3d%%  %5.3f %s\n", lv, anx, bar)
	}
	return b.String()
}

// Table2Result wraps the demographics table.
type Table2Result struct {
	Demographics survey.Demographics
}

// Table2 regenerates the survey-population table.
func Table2(seed int64) Table2Result {
	cfg := survey.DefaultConfig()
	cfg.Seed = seed
	return Table2Result{Demographics: survey.Generate(cfg).Demographics()}
}

// Render implements the text report.
func (r Table2Result) Render() string {
	return "Table II — survey demographics\n" + r.Demographics.Render()
}

// Fig5Result is the session-duration histogram of the generated trace.
type Fig5Result struct {
	Channels  int
	Sessions  int
	Histogram *stats.Histogram
	Median    float64
}

// Fig5 generates the Twitch-like trace and bins its session durations.
func Fig5(seed int64) (Fig5Result, error) {
	cfg := trace.DefaultGenConfig()
	cfg.Seed = seed
	tr, err := trace.Generate(cfg)
	if err != nil {
		return Fig5Result{}, err
	}
	return Fig5Result{
		Channels:  len(tr.Channels),
		Sessions:  tr.NumSessions(),
		Histogram: tr.DurationHistogram(30),
		Median:    stats.Percentile(tr.DurationsMin(), 50),
	}, nil
}

// Render implements the text report.
func (r Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — session durations (%d channels, %d sessions; paper: 1566/4761)\n",
		r.Channels, r.Sessions)
	fmt.Fprintf(&b, "median %.0f min; histogram (30-min bins):\n", r.Median)
	b.WriteString(r.Histogram.Render(50))
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"lpvs/internal/emu"
	"lpvs/internal/scheduler"
	"lpvs/internal/stats"
	"lpvs/internal/survey"
	"lpvs/internal/video"
)

// EvalConfig bundles the knobs shared by the emulation experiments.
type EvalConfig struct {
	Seed int64
	// Slots is the emulated stream length per run.
	Slots int
	// Genre of the emulated streams.
	Genre video.Genre
}

// DefaultEvalConfig matches the paper's setup closely enough for the
// shapes to land while keeping the harness fast.
func DefaultEvalConfig() EvalConfig {
	return EvalConfig{Seed: 1, Slots: 24, Genre: video.Gaming}
}

// giveUpSampler builds the survey-driven give-up behaviour shared by the
// emulation experiments.
func giveUpSampler(seed int64) func(*stats.RNG) float64 {
	cfg := survey.DefaultConfig()
	cfg.Seed = seed
	return emu.SurveyGiveUpSampler(survey.Generate(cfg))
}

// Fig7Row is one sufficient-capacity group result.
type Fig7Row struct {
	GroupSize        int
	EnergySaving     float64
	AnxietyReduction float64
}

// Fig7Result is the sufficient-capacity evaluation.
type Fig7Result struct {
	Rows []Fig7Row
	// Aggregates across the groups, matching the numbers the paper
	// quotes (avg 35.20% / max 37.13% saving; avg 6.82% / max 7.36%
	// anxiety reduction).
	AvgSaving, MaxSaving   float64
	AvgAnxiety, MaxAnxiety float64
}

// Fig7 evaluates LPVS with sufficient edge resource: VC sizes 50-100 on
// an unbounded server.
func Fig7(cfg EvalConfig) (Fig7Result, error) {
	var res Fig7Result
	sampler := giveUpSampler(cfg.Seed)
	for size := 50; size <= 100; size += 10 {
		ec := emu.Config{
			Seed:          cfg.Seed + int64(size),
			GroupSize:     size,
			Slots:         cfg.Slots,
			Lambda:        1,
			ServerStreams: -1,
			Genre:         cfg.Genre,
		}
		ec.Device.GiveUpSampler = sampler
		c, err := emu.Compare(ec, nil)
		if err != nil {
			return Fig7Result{}, err
		}
		row := Fig7Row{
			GroupSize:        size,
			EnergySaving:     c.EnergySavingRatio(),
			AnxietyReduction: c.AnxietyReduction(),
		}
		res.Rows = append(res.Rows, row)
		res.AvgSaving += row.EnergySaving
		res.AvgAnxiety += row.AnxietyReduction
		if row.EnergySaving > res.MaxSaving {
			res.MaxSaving = row.EnergySaving
		}
		if row.AnxietyReduction > res.MaxAnxiety {
			res.MaxAnxiety = row.AnxietyReduction
		}
	}
	res.AvgSaving /= float64(len(res.Rows))
	res.AvgAnxiety /= float64(len(res.Rows))
	return res, nil
}

// Render implements the text report.
func (r Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 7 — LPVS with sufficient edge resource\n")
	b.WriteString("group  energy-saving  anxiety-reduction\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%5d   %6.2f%%        %5.2f%%\n",
			row.GroupSize, 100*row.EnergySaving, 100*row.AnxietyReduction)
	}
	fmt.Fprintf(&b, "avg saving %.2f%% (paper 35.20%%), max %.2f%% (paper 37.13%%)\n",
		100*r.AvgSaving, 100*r.MaxSaving)
	fmt.Fprintf(&b, "avg anxiety reduction %.2f%% (paper 6.82%%), max %.2f%% (paper 7.36%%)\n",
		100*r.AvgAnxiety, 100*r.MaxAnxiety)
	return b.String()
}

// Fig8Cell is one (group size, lambda) result under limited capacity.
type Fig8Cell struct {
	GroupSize        int
	Lambda           float64
	EnergySaving     float64
	AnxietyReduction float64
}

// Fig8Result is the limited-capacity sweep.
type Fig8Result struct {
	Lambdas []float64
	Sizes   []int
	Cells   []Fig8Cell
}

// Fig8 evaluates LPVS with limited edge resource (the paper's 100-stream
// server) for VC sizes 100-500 across lambda settings.
func Fig8(cfg EvalConfig) (Fig8Result, error) {
	res := Fig8Result{
		Lambdas: []float64{0, 1, 5},
		Sizes:   []int{100, 200, 300, 400, 500},
	}
	sampler := giveUpSampler(cfg.Seed)
	slots := cfg.Slots
	if slots > 12 {
		slots = 12 // the sweep is quadratic in work; cap the tail
	}
	for _, lambda := range res.Lambdas {
		for _, size := range res.Sizes {
			ec := emu.Config{
				Seed:          cfg.Seed + int64(size),
				GroupSize:     size,
				Slots:         slots,
				Lambda:        lambda,
				ServerStreams: 100,
				Genre:         cfg.Genre,
			}
			ec.Device.GiveUpSampler = sampler
			c, err := emu.Compare(ec, nil)
			if err != nil {
				return Fig8Result{}, err
			}
			res.Cells = append(res.Cells, Fig8Cell{
				GroupSize:        size,
				Lambda:           lambda,
				EnergySaving:     c.EnergySavingRatio(),
				AnxietyReduction: c.AnxietyReduction(),
			})
		}
	}
	return res, nil
}

// Cell returns the result for a (size, lambda) pair.
func (r Fig8Result) Cell(size int, lambda float64) (Fig8Cell, bool) {
	for _, c := range r.Cells {
		if c.GroupSize == size && c.Lambda == lambda {
			return c, true
		}
	}
	return Fig8Cell{}, false
}

// Render implements the text report.
func (r Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — LPVS with limited edge resource (100-stream server)\n")
	b.WriteString("(a) energy saving\n        ")
	for _, l := range r.Lambdas {
		fmt.Fprintf(&b, "lambda=%-4.1f ", l)
	}
	b.WriteString("\n")
	for _, size := range r.Sizes {
		fmt.Fprintf(&b, "N=%-4d  ", size)
		for _, l := range r.Lambdas {
			c, _ := r.Cell(size, l)
			fmt.Fprintf(&b, "%6.2f%%     ", 100*c.EnergySaving)
		}
		b.WriteString("\n")
	}
	b.WriteString("(b) anxiety reduction\n        ")
	for _, l := range r.Lambdas {
		fmt.Fprintf(&b, "lambda=%-4.1f ", l)
	}
	b.WriteString("\n")
	for _, size := range r.Sizes {
		fmt.Fprintf(&b, "N=%-4d  ", size)
		for _, l := range r.Lambdas {
			c, _ := r.Cell(size, l)
			fmt.Fprintf(&b, "%6.2f%%     ", 100*c.AnxietyReduction)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig9Result is the time-per-viewer comparison for low-battery users.
type Fig9Result struct {
	CohortSize  int
	BaselineMin float64
	TreatedMin  float64
	Gain        float64
}

// Fig9 measures watching time of low-battery users (energy in (0, 40%]
// at stream start, served by LPVS) with and without LPVS, under
// sufficient capacity. Streams run long enough (8 h) that give-up, not
// stream end, terminates most low-battery sessions.
func Fig9(cfg EvalConfig) (Fig9Result, error) {
	sampler := giveUpSampler(cfg.Seed)
	var res Fig9Result
	var baseSum, treatSum float64
	for _, size := range []int{60, 80, 100} {
		ec := emu.Config{
			Seed:          cfg.Seed + int64(size),
			GroupSize:     size,
			Slots:         96,
			Lambda:        1,
			ServerStreams: -1,
			Genre:         cfg.Genre,
		}
		ec.Device.GiveUpSampler = sampler
		c, err := emu.Compare(ec, nil)
		if err != nil {
			return Fig9Result{}, err
		}
		base, treated, _ := c.TPVGain()
		n := c.CohortSize()
		baseSum += base * float64(n)
		treatSum += treated * float64(n)
		res.CohortSize += n
	}
	if res.CohortSize > 0 {
		res.BaselineMin = baseSum / float64(res.CohortSize)
		res.TreatedMin = treatSum / float64(res.CohortSize)
	}
	if res.BaselineMin > 0 {
		res.Gain = (res.TreatedMin - res.BaselineMin) / res.BaselineMin
	}
	return res, nil
}

// Render implements the text report.
func (r Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 9 — time per viewer of low-battery users\n")
	fmt.Fprintf(&b, "cohort: %d low-battery users served by LPVS\n", r.CohortSize)
	fmt.Fprintf(&b, "without LPVS: %.1f min (paper: 42.3)\n", r.BaselineMin)
	fmt.Fprintf(&b, "with    LPVS: %.1f min (paper: 58.7)\n", r.TreatedMin)
	fmt.Fprintf(&b, "gain: %.1f%% (paper: 38.8%%)\n", 100*r.Gain)
	return b.String()
}

// Fig10Row is one scheduler-runtime measurement.
type Fig10Row struct {
	GroupSize int
	Seconds   float64
}

// Fig10Result is the runtime-scaling experiment.
type Fig10Result struct {
	Rows []Fig10Row
	Fit  stats.LinearFit
	// MaxDevicesPerSlot extrapolates how many devices fit a 5-minute
	// scheduling slot under the fitted trend.
	MaxDevicesPerSlot int
}

// Fig10 measures LPVS scheduling wall time against the VC group size on
// synthetic clusters, and fits the linear trend the paper reports
// (y = 0.055x - 0.324, R^2 = 0.999 on their hardware).
func Fig10(cfg EvalConfig, sizes []int) (Fig10Result, error) {
	if len(sizes) == 0 {
		sizes = []int{500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000}
	}
	var res Fig10Result
	var xs, ys []float64
	for _, n := range sizes {
		reqs, err := syntheticCluster(cfg.Seed, n, cfg.Genre)
		if err != nil {
			return Fig10Result{}, err
		}
		policy, err := emu.BuildLPVSPolicy(emu.Config{
			Seed: cfg.Seed, GroupSize: n, Slots: 1, Lambda: 1,
			ServerStreams: 100, Genre: cfg.Genre,
		})
		if err != nil {
			return Fig10Result{}, err
		}
		// Best of five trials: wall-clock noise from a loaded machine
		// only ever inflates a measurement, so the minimum is the
		// cleanest estimate of the true cost.
		sec := 0.0
		for trial := 0; trial < 5; trial++ {
			start := time.Now()
			if _, err := policy.Schedule(reqs); err != nil {
				return Fig10Result{}, err
			}
			if t := time.Since(start).Seconds(); trial == 0 || t < sec {
				sec = t
			}
		}
		res.Rows = append(res.Rows, Fig10Row{GroupSize: n, Seconds: sec})
		xs = append(xs, float64(n))
		ys = append(ys, sec)
	}
	res.Fit = stats.FitLine(xs, ys)
	if res.Fit.Slope > 0 {
		res.MaxDevicesPerSlot = int((scheduler.DefaultSlotSeconds - res.Fit.Intercept) / res.Fit.Slope)
	}
	return res, nil
}

// Render implements the text report.
func (r Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10 — LPVS scheduler running time vs VC group size\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "N=%-5d  %8.4f s\n", row.GroupSize, row.Seconds)
	}
	fmt.Fprintf(&b, "linear fit: y = %.3gx %+.3g (R^2 = %.4f; paper: y = 0.055x - 0.324, R^2 = 0.999)\n",
		r.Fit.Slope, r.Fit.Intercept, r.Fit.R2)
	fmt.Fprintf(&b, "extrapolated capacity within one 5-min slot: %d devices (paper: >5000)\n",
		r.MaxDevicesPerSlot)
	return b.String()
}

// syntheticCluster builds a standalone request set for scheduler-only
// experiments.
func syntheticCluster(seed int64, n int, genre video.Genre) ([]scheduler.Request, error) {
	ec := emu.Config{Seed: seed, GroupSize: n, Slots: 1, Lambda: 1, ServerStreams: 100, Genre: genre}
	e, err := emu.New(ec, scheduler.NoTransform{})
	if err != nil {
		return nil, err
	}
	return e.SnapshotRequests()
}

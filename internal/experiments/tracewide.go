package experiments

import (
	"fmt"
	"strings"

	"lpvs/internal/anxiety"
	"lpvs/internal/behavior"
	"lpvs/internal/fleet"
	"lpvs/internal/trace"
)

// TraceWideResult extends the paper's per-VC evaluation to the whole
// Twitch-like dataset: every sufficiently popular channel becomes a
// virtual cluster with its own edge server.
type TraceWideResult struct {
	Channels         int
	Skipped          int
	Devices          int
	EnergySaving     float64
	AnxietyReduction float64
	TPVBaselineMin   float64
	TPVTreatedMin    float64
	TPVGain          float64
	CohortSize       int
}

// TraceWide runs the fleet orchestrator over the generated trace.
// maxChannels bounds the run (0 = a 40-channel sample, enough for stable
// aggregates while keeping the harness quick).
func TraceWide(seed int64, maxChannels int) (TraceWideResult, error) {
	if maxChannels == 0 {
		maxChannels = 40
	}
	tcfg := trace.DefaultGenConfig()
	tcfg.Seed = seed
	tr, err := trace.Generate(tcfg)
	if err != nil {
		return TraceWideResult{}, err
	}
	res, err := fleet.Run(fleet.Config{
		Trace:         tr,
		MaxChannels:   maxChannels,
		MaxSlots:      12,
		Lambda:        1,
		ServerStreams: 100,
		Seed:          seed,
		GiveUpSampler: giveUpSampler(seed),
	})
	if err != nil {
		return TraceWideResult{}, err
	}
	return TraceWideResult{
		Channels:         len(res.Clusters),
		Skipped:          res.Skipped,
		Devices:          res.Devices,
		EnergySaving:     res.EnergySaving,
		AnxietyReduction: res.AnxietyReduction,
		TPVBaselineMin:   res.TPVBaselineMin,
		TPVTreatedMin:    res.TPVTreatedMin,
		TPVGain:          res.TPVGain,
		CohortSize:       res.CohortSize,
	}, nil
}

// Render implements the text report.
func (r TraceWideResult) Render() string {
	var b strings.Builder
	b.WriteString("Trace-wide — every popular channel as a virtual cluster\n")
	fmt.Fprintf(&b, "clusters emulated: %d (skipped %d small channels), %d devices total\n",
		r.Channels, r.Skipped, r.Devices)
	fmt.Fprintf(&b, "device-weighted energy saving:     %.2f%%\n", 100*r.EnergySaving)
	fmt.Fprintf(&b, "device-weighted anxiety reduction: %.2f%%\n", 100*r.AnxietyReduction)
	fmt.Fprintf(&b, "low-battery TPV: %.1f -> %.1f min (%+.1f%%, cohort %d)\n",
		r.TPVBaselineMin, r.TPVTreatedMin, 100*r.TPVGain, r.CohortSize)
	return b.String()
}

// BehaviorResult validates the future-work behavioural LBA estimator.
type BehaviorResult struct {
	Users         int
	Events        int
	ThresholdMAE  float64
	CurveMaxDelta float64
}

// Behavior generates a synthetic charging log, recovers the anxiety
// curve from behaviour alone, and reports the estimation error against
// the hidden ground truth.
func Behavior(seed int64) (BehaviorResult, error) {
	cfg := behavior.DefaultLogConfig()
	cfg.Seed = seed
	log, err := behavior.Generate(cfg)
	if err != nil {
		return BehaviorResult{}, err
	}
	curve, estimates, err := behavior.Estimate(log, behavior.EstimateConfig{})
	if err != nil {
		return BehaviorResult{}, err
	}
	canon := anxiety.NewCanonical()
	worst := 0.0
	for level := 10; level <= 100; level += 5 {
		e := float64(level) / 100
		d := curve.Anxiety(e) - canon.Anxiety(e)
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return BehaviorResult{
		Users:         cfg.Users,
		Events:        len(log.Events),
		ThresholdMAE:  behavior.ThresholdError(log, estimates),
		CurveMaxDelta: worst,
	}, nil
}

// Render implements the text report.
func (r BehaviorResult) Render() string {
	var b strings.Builder
	b.WriteString("Behavioural LBA estimation (paper section III-C future work)\n")
	fmt.Fprintf(&b, "charging log: %d users, %d plug-in events\n", r.Users, r.Events)
	fmt.Fprintf(&b, "per-user threshold MAE:          %.2f battery points\n", r.ThresholdMAE)
	fmt.Fprintf(&b, "curve deviation vs ground truth: %.3f (max over levels)\n", r.CurveMaxDelta)
	return b.String()
}

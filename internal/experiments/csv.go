package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Each experiment result knows how to export its plot-ready data series
// as CSV, so the paper's figures can be regenerated in any plotting
// tool. The lpvs-bench binary writes these with the -out flag.

func writeRows(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
func d(v int) string     { return strconv.Itoa(v) }

// WriteCSV exports the per-component power of both display types.
func (r Fig1Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, c := range r.LCD {
		rows = append(rows, []string{"LCD", c.Name, f(c.PowerW)})
	}
	for _, c := range r.OLED {
		rows = append(rows, []string{"OLED", c.Name, f(c.PowerW)})
	}
	return writeRows(w, []string{"display_type", "component", "power_w"}, rows)
}

// WriteCSV exports the anxiety curve points.
func (r Fig2Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, pt := range r.Curve.Points() {
		rows = append(rows, []string{d(int(pt[0])), f(pt[1])})
	}
	return writeRows(w, []string{"battery_level", "anxiety_degree"}, rows)
}

// WriteCSV exports the measured strategy saving ranges.
func (r Table1Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Strategy.Target.String(),
			row.Strategy.Name,
			f(row.Strategy.SavingLo), f(row.Strategy.SavingHi),
			f(row.MeasuredLo), f(row.MeasuredHi), f(row.MeasuredAvg),
		})
	}
	return writeRows(w, []string{
		"display_type", "strategy",
		"published_lo", "published_hi",
		"measured_lo", "measured_hi", "measured_avg",
	}, rows)
}

// WriteCSV exports the session-duration histogram bins.
func (r Fig5Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for i, c := range r.Histogram.Counts {
		rows = append(rows, []string{f(r.Histogram.BinCenter(i)), d(c)})
	}
	return writeRows(w, []string{"duration_min", "sessions"}, rows)
}

// WriteCSV exports the sufficient-capacity series.
func (r Fig7Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{d(row.GroupSize), f(row.EnergySaving), f(row.AnxietyReduction)})
	}
	return writeRows(w, []string{"group_size", "energy_saving", "anxiety_reduction"}, rows)
}

// WriteCSV exports the limited-capacity sweep.
func (r Fig8Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, c := range r.Cells {
		rows = append(rows, []string{d(c.GroupSize), f(c.Lambda), f(c.EnergySaving), f(c.AnxietyReduction)})
	}
	return writeRows(w, []string{"group_size", "lambda", "energy_saving", "anxiety_reduction"}, rows)
}

// WriteCSV exports the TPV comparison.
func (r Fig9Result) WriteCSV(w io.Writer) error {
	rows := [][]string{
		{"without_lpvs", f(r.BaselineMin)},
		{"with_lpvs", f(r.TreatedMin)},
		{"gain", f(r.Gain)},
		{"cohort", d(r.CohortSize)},
	}
	return writeRows(w, []string{"metric", "value"}, rows)
}

// WriteCSV exports the runtime-scaling points.
func (r Fig10Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{d(row.GroupSize), f(row.Seconds)})
	}
	rows = append(rows, []string{"slope", f(r.Fit.Slope)})
	rows = append(rows, []string{"intercept", f(r.Fit.Intercept)})
	rows = append(rows, []string{"r2", f(r.Fit.R2)})
	return writeRows(w, []string{"group_size", "seconds"}, rows)
}

// WriteCSV exports an ablation table.
func (r AblationResult) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Variant, f(row.EnergySaving), f(row.AnxietyReduction), f(row.SchedSeconds)})
	}
	return writeRows(w, []string{"variant", "energy_saving", "anxiety_reduction", "sched_seconds"}, rows)
}

// WriteCSV exports the per-cluster trace-wide results.
func (r TraceWideResult) WriteCSV(w io.Writer) error {
	rows := [][]string{
		{"clusters", d(r.Channels)},
		{"devices", d(r.Devices)},
		{"energy_saving", f(r.EnergySaving)},
		{"anxiety_reduction", f(r.AnxietyReduction)},
		{"tpv_baseline_min", f(r.TPVBaselineMin)},
		{"tpv_treated_min", f(r.TPVTreatedMin)},
		{"tpv_gain", f(r.TPVGain)},
	}
	return writeRows(w, []string{"metric", "value"}, rows)
}

package experiments

import (
	"fmt"
	"strings"

	"lpvs/internal/emu"
)

// ValidationRow is one scenario's forecast accuracy.
type ValidationRow struct {
	Scenario string
	// MAE is the mean absolute error of the scheduler's end-of-slot
	// battery forecast, in battery fraction.
	MAE float64
}

// ValidationResult validates the information-compacted energy model the
// scheduler plans with (paper Eqs. (3), (5), (12)) against the emulated
// ground truth, under the factors that should degrade it: partial chunk
// windows (the paper's cache effect) and an unlearned gamma.
type ValidationResult struct {
	Rows []ValidationRow
}

// Validation runs the forecast-accuracy scenarios.
func Validation(seed int64) (ValidationResult, error) {
	base := emu.Config{
		Seed:          seed,
		GroupSize:     60,
		Slots:         16,
		Lambda:        1,
		ServerStreams: -1,
	}
	scenarios := []struct {
		name string
		mut  func(*emu.Config)
	}{
		{"full windows, learned gamma", func(c *emu.Config) {
			c.CacheHitRatio, c.CacheMinPrefix = 1, 0.99
		}},
		{"partial windows (40-100%)", func(c *emu.Config) {
			c.CacheHitRatio, c.CacheMinPrefix = 0.2, 0.4
		}},
		{"fixed gamma=0.31 (no learning)", func(c *emu.Config) {
			c.CacheHitRatio, c.CacheMinPrefix = 1, 0.99
			c.FixedGamma = 0.31
		}},
	}
	var res ValidationResult
	for _, sc := range scenarios {
		cfg := base
		sc.mut(&cfg)
		e, err := emu.New(cfg, nil)
		if err != nil {
			return res, err
		}
		run, err := e.Run()
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, ValidationRow{
			Scenario: sc.name,
			MAE:      run.MeanEnergyPredictionError(),
		})
	}
	return res, nil
}

// Render implements the text report.
func (r ValidationResult) Render() string {
	var b strings.Builder
	b.WriteString("Model validation — compacted energy forecast vs emulated truth\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-34s MAE %.4f battery fraction\n", row.Scenario, row.MAE)
	}
	b.WriteString("the compacting algebra is exact; residual error comes from unavailable\n")
	b.WriteString("chunk tails and the gamma estimate — both shrink as LPVS learns\n")
	return b.String()
}

package persist

import (
	"errors"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path via a same-directory temp file,
// fsync, and rename, so a crash mid-write can never leave a torn file
// at path: readers observe either the previous complete snapshot or
// the new one, never a prefix.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

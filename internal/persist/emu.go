package persist

import (
	"fmt"
	"os"

	"lpvs/internal/bayes"
	"lpvs/internal/display"
)

// Emulator-checkpoint payload identity.
const (
	// EmuKind names the lpvs-emu mid-run checkpoint payload.
	EmuKind = "lpvs-emu-checkpoint"
	// EmuVersion is the payload schema version.
	EmuVersion = 1
)

// EmuDevice is one emulated device's full state — static generation
// parameters and dynamic play state alike. Carrying the static fields
// too makes resume independent of how the fleet was generated (the
// survey-driven give-up sampler is a function and cannot be
// fingerprinted): the resuming process regenerates a fleet and then
// overwrites it wholesale from the checkpoint.
type EmuDevice struct {
	ID         string
	Display    display.Spec
	CapacityJ  float64
	LevelJ     float64
	BasePowerW float64
	GiveUpFrac float64
	// State is the device.State value (watching / gave up / dead /
	// finished).
	State      int
	WatchedSec float64
	Estimator  bayes.Snapshot
}

// RNGState pins one deterministic stream's exact position
// (stats.RNG.State / stats.RestoreRNG).
type RNGState struct {
	Seed  int64
	Draws uint64
}

// EmuCheckpoint freezes an emulator between slots so a later process
// can resume the run and finish with results identical to an
// uninterrupted one (modulo wall-clock timing and the restarted SLO
// windows; see DESIGN.md §14).
type EmuCheckpoint struct {
	// ConfigHash fingerprints the workload-defining configuration;
	// Restore refuses a checkpoint hashed under a different config, so
	// a drifted resume cold-starts instead of silently diverging.
	ConfigHash string
	// NextSlot is the first slot the resumed run executes.
	NextSlot int
	// Devices carries the fleet, in generation order.
	Devices []EmuDevice
	// CacheRNG is the edge-cache sampling stream's position — the only
	// random stream the emulator consumes during Run.
	CacheRNG RNGState
	// Result is the partial run's accumulated RunResult as JSON. The
	// emulator owns that type; persist treats it as opaque bytes.
	Result []byte
}

// Encode frames the checkpoint as a checksummed container.
func (c *EmuCheckpoint) Encode() []byte {
	var e Enc
	e.String(c.ConfigHash)
	e.Int64(int64(c.NextSlot))
	e.Uint64(uint64(len(c.Devices)))
	for i := range c.Devices {
		d := &c.Devices[i]
		e.String(d.ID)
		encDisplay(&e, d.Display)
		e.Float64(d.CapacityJ)
		e.Float64(d.LevelJ)
		e.Float64(d.BasePowerW)
		e.Float64(d.GiveUpFrac)
		e.Int64(int64(d.State))
		e.Float64(d.WatchedSec)
		encEstimator(&e, d.Estimator)
	}
	e.Int64(c.CacheRNG.Seed)
	e.Uint64(c.CacheRNG.Draws)
	e.Bytes(c.Result)
	return EncodeContainer(EmuKind, EmuVersion, e.Data())
}

// DecodeEmuCheckpoint parses a checkpoint container, failing closed on
// any structural defect.
func DecodeEmuCheckpoint(data []byte) (*EmuCheckpoint, error) {
	payload, err := DecodeContainer(data, EmuKind, EmuVersion)
	if err != nil {
		return nil, err
	}
	d := NewDec(payload)
	c := &EmuCheckpoint{
		ConfigHash: d.String(),
		NextSlot:   int(d.Int64()),
	}
	if n := d.Count(8); n > 0 {
		c.Devices = make([]EmuDevice, n)
		for i := range c.Devices {
			dev := &c.Devices[i]
			dev.ID = d.String()
			dev.Display = decDisplay(d)
			dev.CapacityJ = d.Float64()
			dev.LevelJ = d.Float64()
			dev.BasePowerW = d.Float64()
			dev.GiveUpFrac = d.Float64()
			dev.State = int(d.Int64())
			dev.WatchedSec = d.Float64()
			dev.Estimator = decEstimator(d)
		}
	}
	c.CacheRNG.Seed = d.Int64()
	c.CacheRNG.Draws = d.Uint64()
	c.Result = d.Bytes()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, d.Remaining())
	}
	return c, nil
}

// WriteFile encodes the checkpoint and writes it atomically.
func (c *EmuCheckpoint) WriteFile(path string) error {
	return WriteFileAtomic(path, c.Encode())
}

// LoadEmuCheckpoint reads and decodes a checkpoint file.
func LoadEmuCheckpoint(path string) (*EmuCheckpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeEmuCheckpoint(data)
}

package persist

import (
	"errors"
	"fmt"
	"sort"

	"lpvs/internal/bayes"
	"lpvs/internal/display"
	"lpvs/internal/obs/audit"
)

// RecoverFromAudit rebuilds a daemon snapshot from a decision audit
// log — the fallback recovery path when the snapshot file is missing
// or corrupt (DESIGN.md §14). The log records every decision but not
// the Bayesian updates between them, so the recovery is approximate by
// construction: each device's estimator is rebuilt as a posterior
// concentrated (sigma = DefaultObsSigma) at the last gamma the
// scheduler planned with, which preserves the learned point estimate
// while discarding the exact uncertainty. Pending reports and
// incremental warm seeds are not in the log and come back empty; both
// regenerate within one slot. Callers decide how much of the log to
// verify first (audit.Record.Replay) — this function only transforms
// records it is handed.
func RecoverFromAudit(recs []*audit.Record) (*Snapshot, error) {
	if len(recs) == 0 {
		return nil, errors.New("persist: audit log holds no records")
	}
	type devInfo struct {
		slot      int
		gamma     float64
		spec      display.Spec
		transform bool
	}
	devs := make(map[string]*devInfo)
	maxSlot := 0
	for _, rec := range recs {
		if rec == nil {
			return nil, errors.New("persist: nil audit record")
		}
		if rec.Slot > maxSlot {
			maxSlot = rec.Slot
		}
		for i := range rec.Requests {
			rr := &rec.Requests[i]
			req, err := rr.Request()
			if err != nil {
				return nil, fmt.Errorf("persist: audit slot %d: %w", rec.Slot, err)
			}
			di := devs[rr.Device]
			if di == nil {
				di = &devInfo{}
				devs[rr.Device] = di
			}
			di.slot = rec.Slot
			di.gamma = rr.Gamma
			di.spec = req.Display
		}
		for _, v := range rec.Verdicts {
			if di := devs[v.Device]; di != nil {
				di.transform = v.Selected
			}
		}
	}
	snap := &Snapshot{Slot: maxSlot + 1}
	ids := make([]string, 0, len(devs))
	for id := range devs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		di := devs[id]
		snap.Devices = append(snap.Devices, DeviceState{
			ID: id,
			// The log does not carry channel membership; the restoring
			// server maps an empty channel to its default stream.
			Channel:   "",
			Display:   di.spec,
			Transform: di.transform,
			Slot:      di.slot,
			Estimator: bayes.Snapshot{
				Mean:         di.gamma,
				Sigma:        bayes.DefaultObsSigma,
				ObsSigma:     bayes.DefaultObsSigma,
				Lo:           bayes.DefaultGammaL,
				Hi:           bayes.DefaultGammaU,
				Observations: 1,
			},
		})
	}
	return snap, nil
}

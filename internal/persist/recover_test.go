package persist_test

// External test package: recovery is exercised against a real audit
// log written by the emulator, which itself imports persist — an
// in-package test would cycle.

import (
	"path/filepath"
	"testing"

	"lpvs/internal/bayes"
	"lpvs/internal/emu"
	"lpvs/internal/obs/audit"
	"lpvs/internal/persist"
	"lpvs/internal/video"
)

func auditedRun(t *testing.T, dir string) []*audit.Record {
	t.Helper()
	cfg := emu.Config{
		Seed:          7,
		GroupSize:     20,
		Slots:         5,
		Lambda:        1,
		ServerStreams: 6,
		Genre:         video.Gaming,
		AuditDir:      dir,
	}
	e, err := emu.New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	recs, err := audit.ReadFile(filepath.Join(dir, audit.FileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("audited run produced no records")
	}
	return recs
}

// TestRecoverFromAudit rebuilds a snapshot from a real audit log and
// checks the reconstruction invariants: slot advances past the last
// record, every device carries its last-logged gamma as a concentrated
// posterior, and the result encodes/decodes cleanly.
func TestRecoverFromAudit(t *testing.T) {
	recs := auditedRun(t, t.TempDir())
	snap, err := persist.RecoverFromAudit(recs)
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if snap.Slot != last.Slot+1 {
		t.Fatalf("recovered slot %d, want %d", snap.Slot, last.Slot+1)
	}
	if len(snap.Devices) == 0 {
		t.Fatal("no devices recovered")
	}
	if len(snap.Pending) != 0 || len(snap.Streams) != 0 {
		t.Fatal("audit recovery must not invent pending reports or warm seeds")
	}
	lastGamma := make(map[string]float64)
	for _, rec := range recs {
		for i := range rec.Requests {
			lastGamma[rec.Requests[i].Device] = rec.Requests[i].Gamma
		}
	}
	for i, d := range snap.Devices {
		if i > 0 && snap.Devices[i-1].ID >= d.ID {
			t.Fatal("recovered devices not sorted by ID")
		}
		want, ok := lastGamma[d.ID]
		if !ok {
			t.Fatalf("device %s recovered but never logged", d.ID)
		}
		if d.Estimator.Mean != want {
			t.Fatalf("device %s: recovered mean %v, want last-logged gamma %v", d.ID, d.Estimator.Mean, want)
		}
		if d.Estimator.Sigma != bayes.DefaultObsSigma || d.Estimator.Observations != 1 {
			t.Fatalf("device %s: posterior not concentrated (%+v)", d.ID, d.Estimator)
		}
		// The recovered posterior must be a valid estimator.
		if _, err := bayes.FromSnapshot(d.Estimator); err != nil {
			t.Fatalf("device %s: recovered estimator invalid: %v", d.ID, err)
		}
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.DecodeSnapshot(data); err != nil {
		t.Fatalf("recovered snapshot does not round-trip: %v", err)
	}
}

// TestRecoverFromAuditEmpty: no records is an error, not an empty
// snapshot (an empty snapshot would look like a successful recovery).
func TestRecoverFromAuditEmpty(t *testing.T) {
	if _, err := persist.RecoverFromAudit(nil); err == nil {
		t.Fatal("empty record set recovered")
	}
	if _, err := persist.RecoverFromAudit([]*audit.Record{nil}); err == nil {
		t.Fatal("nil record recovered")
	}
}

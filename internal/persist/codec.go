// Package persist implements the LPVS durable-state container
// (DESIGN.md §14): a versioned, length-prefixed, SHA-256-checksummed
// binary envelope plus the snapshot payloads built on it — the
// daemon's warm-restart state (Snapshot) and the emulator's mid-run
// checkpoint (EmuCheckpoint).
//
// Decoding fails closed: a truncated, tampered, version-skewed, or
// trailing-garbage file yields a typed error and nothing else, so a
// restoring process can fall back to the next recovery path (audit
// replay, then cold start) instead of loading partial state. Encoding
// is canonical — map-backed collections are sorted before framing —
// so encode→decode→encode is byte-stable.
package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Container framing, common to every snapshot kind:
//
//	offset  size  field
//	0       8     magic "LPVSSNAP"
//	8       8     container version (u64 LE)
//	16      8+k   kind (u64 length prefix + k bytes)
//	...     8     payload schema version (u64 LE)
//	...     8+n   payload (u64 length prefix + n bytes)
//	...     32    SHA-256 over every preceding byte
//
// The container version governs this framing; each kind's payload
// schema versions independently.
const (
	Magic            = "LPVSSNAP"
	ContainerVersion = 1

	checksumSize = sha256.Size
)

// Sentinel decode failures, matchable with errors.Is. Every decode
// error wraps exactly one of them.
var (
	ErrTruncated = errors.New("persist: truncated snapshot")
	ErrBadMagic  = errors.New("persist: bad snapshot magic")
	ErrChecksum  = errors.New("persist: snapshot checksum mismatch")
	ErrVersion   = errors.New("persist: unsupported snapshot version")
	ErrKind      = errors.New("persist: wrong snapshot kind")
	ErrCorrupt   = errors.New("persist: corrupt snapshot payload")
)

// EncodeContainer frames a payload in the versioned, checksummed
// envelope above.
func EncodeContainer(kind string, payloadVersion uint64, payload []byte) []byte {
	var e Enc
	e.b = make([]byte, 0, len(Magic)+3*8+len(kind)+8+len(payload)+checksumSize)
	e.b = append(e.b, Magic...)
	e.Uint64(ContainerVersion)
	e.String(kind)
	e.Uint64(payloadVersion)
	e.Bytes(payload)
	sum := sha256.Sum256(e.b)
	return append(e.b, sum[:]...)
}

// DecodeContainer validates the envelope — magic, container version,
// exact length, checksum, kind, payload version, in that order (the
// container version gates the rest of the layout, so it is the one
// field read before the checksum) — and returns the payload.
func DecodeContainer(data []byte, kind string, payloadVersion uint64) ([]byte, error) {
	if len(data) < len(Magic) {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	d := Dec{b: data, off: len(Magic)}
	cv := d.Uint64()
	if d.err != nil {
		return nil, d.err
	}
	if cv != ContainerVersion {
		return nil, fmt.Errorf("%w: container version %d, want %d", ErrVersion, cv, ContainerVersion)
	}
	gotKind := d.String()
	pv := d.Uint64()
	payload := d.Bytes()
	if d.err != nil {
		return nil, d.err
	}
	switch rest := len(data) - d.off; {
	case rest < checksumSize:
		return nil, fmt.Errorf("%w: missing checksum trailer", ErrTruncated)
	case rest > checksumSize:
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, rest-checksumSize)
	}
	sum := sha256.Sum256(data[:d.off])
	if !bytes.Equal(sum[:], data[d.off:]) {
		return nil, ErrChecksum
	}
	if gotKind != kind {
		return nil, fmt.Errorf("%w: kind %q, want %q", ErrKind, gotKind, kind)
	}
	if pv != payloadVersion {
		return nil, fmt.Errorf("%w: %s payload version %d, want %d", ErrVersion, kind, pv, payloadVersion)
	}
	return payload, nil
}

// Enc is an append-only little-endian encoder. Variable-length values
// carry a u64 length prefix; floats are raw IEEE 754 bits, so every
// value — including NaNs and signed zeros — round-trips exactly.
type Enc struct {
	b []byte
}

// Uint64 appends v little-endian.
func (e *Enc) Uint64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}

// Int64 appends v as its two's-complement bits.
func (e *Enc) Int64(v int64) { e.Uint64(uint64(v)) }

// Float64 appends v's IEEE 754 bits.
func (e *Enc) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Bool appends one byte, 0 or 1.
func (e *Enc) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Byte appends one raw byte.
func (e *Enc) Byte(v byte) { e.b = append(e.b, v) }

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Uint64(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Enc) Bytes(p []byte) {
	e.Uint64(uint64(len(p)))
	e.b = append(e.b, p...)
}

// Data returns the encoded bytes.
func (e *Enc) Data() []byte { return e.b }

// Dec is the matching sticky-error decoder: the first failure poisons
// the stream and every later read returns the zero value, so decode
// functions can read a whole structure and check Err once. Length
// prefixes are bounds-checked against the remaining input before any
// allocation, which keeps hostile inputs (fuzzing, corrupted files)
// from requesting huge buffers.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode failure, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining returns how many undecoded bytes are left.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

func (d *Dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uint64 reads a little-endian u64.
func (d *Dec) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail(fmt.Errorf("%w: want 8 bytes at offset %d, have %d", ErrTruncated, d.off, d.Remaining()))
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// Int64 reads a two's-complement i64.
func (d *Dec) Int64() int64 { return int64(d.Uint64()) }

// Float64 reads IEEE 754 bits.
func (d *Dec) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Byte reads one raw byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 1 {
		d.fail(fmt.Errorf("%w: want 1 byte at offset %d", ErrTruncated, d.off))
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// Bool reads one byte and requires it to be exactly 0 or 1 — anything
// else is corruption, not a truthy value (strictness keeps
// encode→decode→encode byte-stable).
func (d *Dec) Bool() bool {
	switch v := d.Byte(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: bool byte 0x%02x at offset %d", ErrCorrupt, v, d.off-1))
		return false
	}
}

// length reads a u64 length prefix bounded by the remaining input.
func (d *Dec) length() int {
	n := d.Uint64()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Remaining()) {
		d.fail(fmt.Errorf("%w: length %d exceeds %d remaining bytes at offset %d", ErrTruncated, n, d.Remaining(), d.off-8))
		return 0
	}
	return int(n)
}

// Count reads a u64 element count for a collection whose elements each
// occupy at least minBytesPer encoded bytes, bounding the count by the
// remaining input so corrupted counts cannot drive huge allocations.
func (d *Dec) Count(minBytesPer int) int {
	if minBytesPer < 1 {
		minBytesPer = 1
	}
	n := d.Uint64()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Remaining()/minBytesPer) {
		d.fail(fmt.Errorf("%w: count %d exceeds %d remaining bytes at offset %d", ErrTruncated, n, d.Remaining(), d.off-8))
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.length()
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// Bytes reads a length-prefixed byte slice (copied, so the result does
// not alias the input buffer).
func (d *Dec) Bytes() []byte {
	n := d.length()
	if d.err != nil {
		return nil
	}
	p := append([]byte(nil), d.b[d.off:d.off+n]...)
	d.off += n
	return p
}

package persist

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lpvs/internal/anxiety"
	"lpvs/internal/bayes"
	"lpvs/internal/display"
	"lpvs/internal/scheduler"
	"lpvs/internal/video"
)

func testSpec(i int) display.Spec {
	ty := display.LCD
	if i%2 == 1 {
		ty = display.OLED
	}
	return display.Spec{
		Type:         ty,
		Resolution:   display.Res1080p,
		DiagonalInch: 5.5 + float64(i%4)*0.3,
		Brightness:   0.4 + float64(i%5)*0.1,
	}
}

func testEstimator(i int) bayes.Snapshot {
	return bayes.Snapshot{
		Mean:         bayes.DefaultGammaL + float64(i%7)*0.05,
		Sigma:        0.01 + float64(i%3)*0.02,
		ObsSigma:     bayes.DefaultObsSigma,
		Lo:           bayes.DefaultGammaL,
		Hi:           bayes.DefaultGammaU,
		Observations: i % 9,
	}
}

func testChunk(i int) video.Chunk {
	var c video.Chunk
	c.Index = i
	c.DurationSec = 2
	c.BitrateKbps = 4000 + 100*i
	c.Stats.MeanLuma = 0.3 + 0.01*float64(i%20)
	c.Stats.PeakLuma = 0.9
	c.Stats.MeanR = 0.4
	c.Stats.MeanG = 0.5
	c.Stats.MeanB = 0.2
	return c
}

func testRequest(i int, m anxiety.Model) scheduler.Request {
	r := scheduler.Request{
		DeviceID:         fmt.Sprintf("dev-%03d", i),
		Display:          testSpec(i),
		EnergyFrac:       0.1 + 0.01*float64(i%80),
		BatteryCapacityJ: 40000,
		BasePowerW:       1.2,
		Gamma:            0.2 + 0.001*float64(i%100),
		Anxiety:          m,
	}
	for j := 0; j < 3; j++ {
		r.Chunks = append(r.Chunks, testChunk(i*3+j))
	}
	return r
}

// snapshotTable returns named snapshots spanning the edge cases the
// payload schema must round-trip exactly.
func snapshotTable() map[string]*Snapshot {
	rescaled, err := anxiety.NewRescaled(anxiety.NewCanonical(), 0.4)
	if err != nil {
		panic(err)
	}
	big := &Snapshot{Slot: 123}
	for i := 0; i < 500; i++ {
		big.Devices = append(big.Devices, DeviceState{
			ID:        fmt.Sprintf("dev-%03d", i),
			Channel:   fmt.Sprintf("ch-%d", i%7),
			Display:   testSpec(i),
			Transform: i%3 == 0,
			Slot:      120 + i%3,
			Estimator: testEstimator(i),
		})
	}
	return map[string]*Snapshot{
		"empty":     {},
		"slot-only": {Slot: 42},
		"zero-observations": {Slot: 1, Devices: []DeviceState{{
			ID: "a", Channel: "live", Display: testSpec(0),
			Estimator: bayes.Snapshot{
				Mean: bayes.DefaultPriorMean, Sigma: bayes.DefaultPriorSigma,
				ObsSigma: bayes.DefaultObsSigma,
				Lo:       bayes.DefaultGammaL, Hi: bayes.DefaultGammaU,
			},
		}}},
		"extreme-gamma": {Slot: 9, Devices: []DeviceState{
			{ID: "lo", Display: testSpec(1), Estimator: bayes.Snapshot{
				Mean: bayes.DefaultGammaL, Sigma: 1e-9, ObsSigma: 1e-9,
				Lo: bayes.DefaultGammaL, Hi: bayes.DefaultGammaU, Observations: 1 << 30,
			}},
			{ID: "hi", Display: testSpec(2), Estimator: bayes.Snapshot{
				Mean: bayes.DefaultGammaU, Sigma: 1e6, ObsSigma: 12,
				Lo: bayes.DefaultGammaL, Hi: bayes.DefaultGammaU, Observations: 1,
			}},
		}},
		"many-devices": big,
		"pending": {Slot: 3, Pending: []scheduler.Request{
			testRequest(0, nil),
			testRequest(1, anxiety.NewCanonical()),
			testRequest(2, rescaled),
		}},
		"streams": {Slot: 7, Streams: []scheduler.StreamState{
			{Key: "live", ConfigSig: []byte{1, 2, 3}, WarmSelected: []string{"a", "b"}},
			{Key: "alt", ConfigSig: []byte{9}, WarmSelected: []string{"z"}},
		}},
	}
}

// TestSnapshotRoundTrip asserts encode→decode→encode byte stability
// and structural equality across the edge-case table.
func TestSnapshotRoundTrip(t *testing.T) {
	for name, snap := range snapshotTable() {
		t.Run(name, func(t *testing.T) {
			data, err := snap.Encode()
			if err != nil {
				t.Fatal(err)
			}
			back, err := DecodeSnapshot(data)
			if err != nil {
				t.Fatal(err)
			}
			data2, err := back.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, data2) {
				t.Fatalf("encode→decode→encode changed %d bytes", len(data2))
			}
			if back.Slot != snap.Slot {
				t.Fatalf("slot %d != %d", back.Slot, snap.Slot)
			}
			if len(back.Devices) != len(snap.Devices) ||
				len(back.Pending) != len(snap.Pending) ||
				len(back.Streams) != len(snap.Streams) {
				t.Fatal("collection sizes changed in round trip")
			}
		})
	}
}

// TestSnapshotEncodeCanonical asserts encoding sorts map-order inputs:
// the same logical snapshot encodes to identical bytes regardless of
// slice order.
func TestSnapshotEncodeCanonical(t *testing.T) {
	a := &Snapshot{
		Slot: 5,
		Devices: []DeviceState{
			{ID: "b", Display: testSpec(0), Estimator: testEstimator(0)},
			{ID: "a", Display: testSpec(1), Estimator: testEstimator(1)},
		},
		Streams: []scheduler.StreamState{
			{Key: "z", ConfigSig: []byte{1}, WarmSelected: []string{"q", "p"}},
			{Key: "a", ConfigSig: []byte{1}, WarmSelected: []string{"x"}},
		},
	}
	b := &Snapshot{
		Slot: 5,
		Devices: []DeviceState{
			{ID: "a", Display: testSpec(1), Estimator: testEstimator(1)},
			{ID: "b", Display: testSpec(0), Estimator: testEstimator(0)},
		},
		Streams: []scheduler.StreamState{
			{Key: "a", ConfigSig: []byte{1}, WarmSelected: []string{"x"}},
			{Key: "z", ConfigSig: []byte{1}, WarmSelected: []string{"p", "q"}},
		},
	}
	da, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatal("encoding is order-sensitive; it must be canonical")
	}
}

type customAnxiety struct{}

func (customAnxiety) Anxiety(float64) float64 { return 0.5 }

// TestSnapshotEncodeRefusesCustomAnxiety: a model that cannot be
// rebuilt from data must refuse to encode rather than silently drop.
func TestSnapshotEncodeRefusesCustomAnxiety(t *testing.T) {
	snap := &Snapshot{Pending: []scheduler.Request{testRequest(0, customAnxiety{})}}
	if _, err := snap.Encode(); err == nil {
		t.Fatal("encoding a custom anxiety model must fail")
	}
}

// TestPendingAnxietyRoundTrip pins the anxiety models' reconstruction.
func TestPendingAnxietyRoundTrip(t *testing.T) {
	rescaled, err := anxiety.NewRescaled(anxiety.NewCanonical(), 0.35)
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Pending: []scheduler.Request{
		testRequest(0, nil),
		testRequest(1, anxiety.NewCanonical()),
		testRequest(2, rescaled),
	}}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Pending[0].Anxiety != nil {
		t.Fatal("nil anxiety did not round-trip to nil")
	}
	if !reflect.DeepEqual(back.Pending[1].Anxiety, anxiety.NewCanonical()) {
		t.Fatalf("canonical anxiety round trip: %#v", back.Pending[1].Anxiety)
	}
	if !reflect.DeepEqual(back.Pending[2].Anxiety, rescaled) {
		t.Fatalf("rescaled anxiety round trip: %#v", back.Pending[2].Anxiety)
	}
}

// TestContainerRoundTrip covers the envelope alone.
func TestContainerRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 4096)} {
		data := EncodeContainer("k", 3, payload)
		got, err := DecodeContainer(data, "k", 3)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload changed: %x != %x", got, payload)
		}
	}
}

// TestContainerAdversarial: every corruption class fails closed with
// its sentinel error and never panics.
func TestContainerAdversarial(t *testing.T) {
	valid := EncodeContainer(StateKind, StateVersion, []byte("payload-bytes"))

	t.Run("zero-length", func(t *testing.T) {
		if _, err := DecodeContainer(nil, StateKind, StateVersion); !errors.Is(err, ErrTruncated) {
			t.Fatalf("want ErrTruncated, got %v", err)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[0] ^= 0xFF
		if _, err := DecodeContainer(data, StateKind, StateVersion); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("want ErrBadMagic, got %v", err)
		}
	})
	t.Run("every-truncation", func(t *testing.T) {
		for n := 0; n < len(valid); n++ {
			if _, err := DecodeContainer(valid[:n], StateKind, StateVersion); err == nil {
				t.Fatalf("truncation to %d bytes decoded successfully", n)
			}
		}
	})
	t.Run("every-bitflip", func(t *testing.T) {
		for i := range valid {
			data := append([]byte(nil), valid...)
			data[i] ^= 0x01
			if _, err := DecodeContainer(data, StateKind, StateVersion); err == nil {
				t.Fatalf("flipping byte %d decoded successfully", i)
			}
		}
	})
	t.Run("checksum-flip", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[len(data)-1] ^= 0x01
		if _, err := DecodeContainer(data, StateKind, StateVersion); !errors.Is(err, ErrChecksum) {
			t.Fatalf("want ErrChecksum, got %v", err)
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		data := append(append([]byte(nil), valid...), 0xDE, 0xAD)
		if _, err := DecodeContainer(data, StateKind, StateVersion); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("container-version-skew", func(t *testing.T) {
		// A future container version must be rejected even with a valid
		// checksum: rebuild the trailer after bumping the version field.
		data := append([]byte(nil), valid[:len(valid)-checksumSize]...)
		var e Enc
		e.Uint64(ContainerVersion + 1)
		copy(data[len(Magic):], e.Data())
		data = sealContainer(data)
		if _, err := DecodeContainer(data, StateKind, StateVersion); !errors.Is(err, ErrVersion) {
			t.Fatalf("want ErrVersion, got %v", err)
		}
	})
	t.Run("payload-version-skew", func(t *testing.T) {
		data := EncodeContainer(StateKind, StateVersion+7, []byte("p"))
		if _, err := DecodeContainer(data, StateKind, StateVersion); !errors.Is(err, ErrVersion) {
			t.Fatalf("want ErrVersion, got %v", err)
		}
	})
	t.Run("kind-mismatch", func(t *testing.T) {
		data := EncodeContainer(EmuKind, StateVersion, []byte("p"))
		if _, err := DecodeContainer(data, StateKind, StateVersion); !errors.Is(err, ErrKind) {
			t.Fatalf("want ErrKind, got %v", err)
		}
	})
	t.Run("huge-length-prefix", func(t *testing.T) {
		// A corrupted length prefix far beyond the input must fail the
		// bounds check, not attempt the allocation. Corrupt the payload
		// length field and re-seal so only the bounds check can object.
		data := append([]byte(nil), valid[:len(valid)-checksumSize]...)
		off := len(Magic) + 8 + 8 + len(StateKind) + 8
		var e Enc
		e.Uint64(math.MaxUint64 / 2)
		copy(data[off:], e.Data())
		data = sealContainer(data)
		if _, err := DecodeContainer(data, StateKind, StateVersion); !errors.Is(err, ErrTruncated) {
			t.Fatalf("want ErrTruncated, got %v", err)
		}
	})
}

// sealContainer appends a fresh SHA-256 trailer over data.
func sealContainer(data []byte) []byte {
	sum := sha256.Sum256(data)
	return append(data, sum[:]...)
}

// TestSnapshotDecodeAdversarial flips and truncates a full snapshot
// encoding: decode must fail (or, for payload-interior mutations that
// cannot survive the checksum, fail) and never panic.
func TestSnapshotDecodeAdversarial(t *testing.T) {
	snap := snapshotTable()["pending"]
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n += 7 {
		if _, err := DecodeSnapshot(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	for i := 0; i < len(data); i += 3 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x10
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("flipping byte %d decoded successfully", i)
		}
	}
}

// TestEmuCheckpointRoundTrip covers the emulator payload.
func TestEmuCheckpointRoundTrip(t *testing.T) {
	ck := &EmuCheckpoint{
		ConfigHash: "deadbeef",
		NextSlot:   4,
		CacheRNG:   RNGState{Seed: 42, Draws: 12345},
		Result:     []byte(`{"SlotsRun":4}`),
	}
	for i := 0; i < 40; i++ {
		ck.Devices = append(ck.Devices, EmuDevice{
			ID:         fmt.Sprintf("dev-%03d", i),
			Display:    testSpec(i),
			CapacityJ:  40000,
			LevelJ:     1000 * float64(i),
			BasePowerW: 1.1,
			GiveUpFrac: 0.05,
			State:      i % 4,
			WatchedSec: 60 * float64(i),
			Estimator:  testEstimator(i),
		})
	}
	data := ck.Encode()
	back, err := DecodeEmuCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ck) {
		t.Fatal("checkpoint changed in round trip")
	}
	if !bytes.Equal(back.Encode(), data) {
		t.Fatal("encode→decode→encode changed bytes")
	}
	for n := 0; n < len(data); n += 11 {
		if _, err := DecodeEmuCheckpoint(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
}

// TestWriteFileAtomicCrashSafety: a torn temp file from an interrupted
// write must leave the previous snapshot loadable and not block the
// next write.
func TestWriteFileAtomicCrashSafety(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SnapshotFile)
	first := &Snapshot{Slot: 1, Devices: []DeviceState{{ID: "a", Display: testSpec(0), Estimator: testEstimator(0)}}}
	if err := first.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a half-written temp file next to the
	// real snapshot.
	valid, err := first.Encode()
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, SnapshotFile+".tmp-crashed")
	if err := os.WriteFile(torn, valid[:len(valid)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("previous snapshot unloadable after torn temp write: %v", err)
	}
	if back.Slot != 1 || len(back.Devices) != 1 {
		t.Fatal("previous snapshot content changed")
	}
	second := &Snapshot{Slot: 2}
	if err := second.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err = LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Slot != 2 {
		t.Fatalf("next write did not land: slot %d", back.Slot)
	}
}

// FuzzSnapshotDecode: no input may panic the decoder, and anything
// that decodes must re-encode byte-identically (canonical form).
func FuzzSnapshotDecode(f *testing.F) {
	for _, snap := range snapshotTable() {
		data, err := snap.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		out, err := snap.Encode()
		if err != nil {
			t.Fatalf("decoded snapshot refused to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode→encode not byte-identical: %d vs %d bytes", len(out), len(data))
		}
	})
}

func benchSnapshot(n int) *Snapshot {
	s := &Snapshot{Slot: 77}
	for i := 0; i < n; i++ {
		s.Devices = append(s.Devices, DeviceState{
			ID:        fmt.Sprintf("dev-%05d", i),
			Channel:   "live",
			Display:   testSpec(i),
			Transform: i%2 == 0,
			Slot:      76,
			Estimator: testEstimator(i),
		})
	}
	for i := 0; i < n/10; i++ {
		s.Pending = append(s.Pending, testRequest(i, nil))
	}
	return s
}

func BenchmarkSnapshotEncode(b *testing.B) {
	s := benchSnapshot(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotDecode(b *testing.B) {
	data, err := benchSnapshot(1000).Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSnapshot(data); err != nil {
			b.Fatal(err)
		}
	}
}

package persist

import (
	"fmt"
	"os"
	"sort"

	"lpvs/internal/anxiety"
	"lpvs/internal/bayes"
	"lpvs/internal/display"
	"lpvs/internal/obs/audit"
	"lpvs/internal/scheduler"
	"lpvs/internal/video"
)

// Daemon-state payload identity.
const (
	// StateKind names the lpvsd warm-restart snapshot payload.
	StateKind = "lpvsd-state"
	// StateVersion is the payload schema version; bump on any layout
	// change so old daemons refuse new snapshots (and vice versa)
	// instead of misreading them.
	StateVersion = 1
	// SnapshotFile is the file name the daemon reads and writes inside
	// its snapshot directory.
	SnapshotFile = "snapshot.lpvs"
)

// DeviceState is one device's durable daemon-side state: the learned
// Bayesian posterior plus the bookkeeping the decision and explain
// endpoints need across a restart.
type DeviceState struct {
	ID      string
	Channel string
	Display display.Spec
	// Transform is the device's last decided verdict.
	Transform bool
	// Slot is the slot that verdict was decided in.
	Slot int
	// Estimator is the gamma posterior (persistent fields only; the
	// derived Gamma/Uncertainty values are recomputed on restore).
	Estimator bayes.Snapshot
}

// Snapshot is the daemon's durable state (DESIGN.md §14): everything a
// warm-restarted lpvsd needs to keep making byte-identical decisions —
// the slot counter, every device's posterior and verdict, the staged
// report set for the upcoming tick, and the incremental scheduler's
// warm seeds. Chunk keyframes are not captured (mirroring the audit
// schema): the scheduler decides from aggregate content statistics, so
// dropping them is decision-neutral.
type Snapshot struct {
	// Slot is the next scheduling slot counter.
	Slot int
	// Devices holds per-device durable state, sorted by ID on encode.
	Devices []DeviceState
	// Pending holds the reports staged for the next tick, sorted by
	// device ID on encode.
	Pending []scheduler.Request
	// Streams holds the incremental scheduler's per-stream warm seeds,
	// sorted by key on encode. Restoring them is optional and guarded
	// by the scheduler config signature (scheduler.StreamState).
	Streams []scheduler.StreamState
}

// Encode frames the snapshot as a checksummed container. Collections
// are sorted first, so encoding is canonical: encode→decode→encode is
// byte-identical.
func (s *Snapshot) Encode() ([]byte, error) {
	devices := append([]DeviceState(nil), s.Devices...)
	sort.Slice(devices, func(i, j int) bool { return devices[i].ID < devices[j].ID })
	pending := append([]scheduler.Request(nil), s.Pending...)
	sort.Slice(pending, func(i, j int) bool { return pending[i].DeviceID < pending[j].DeviceID })
	streams := append([]scheduler.StreamState(nil), s.Streams...)
	sort.Slice(streams, func(i, j int) bool { return streams[i].Key < streams[j].Key })

	var e Enc
	e.Int64(int64(s.Slot))
	e.Uint64(uint64(len(devices)))
	for i := range devices {
		d := &devices[i]
		e.String(d.ID)
		e.String(d.Channel)
		encDisplay(&e, d.Display)
		e.Bool(d.Transform)
		e.Int64(int64(d.Slot))
		encEstimator(&e, d.Estimator)
	}
	e.Uint64(uint64(len(pending)))
	for i := range pending {
		if err := encRequest(&e, &pending[i]); err != nil {
			return nil, err
		}
	}
	e.Uint64(uint64(len(streams)))
	for i := range streams {
		st := &streams[i]
		e.String(st.Key)
		e.Bytes(st.ConfigSig)
		warm := append([]string(nil), st.WarmSelected...)
		sort.Strings(warm)
		e.Uint64(uint64(len(warm)))
		for _, id := range warm {
			e.String(id)
		}
	}
	return EncodeContainer(StateKind, StateVersion, e.Data()), nil
}

// DecodeSnapshot parses a daemon-state container. Decoding is
// structural — framing, checksum, versions, value shapes — and fails
// closed on any defect; semantic validation (estimator parameters,
// display specs, request invariants) happens when the state is applied
// to a server, so recovery can still fall to the next path.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	payload, err := DecodeContainer(data, StateKind, StateVersion)
	if err != nil {
		return nil, err
	}
	d := NewDec(payload)
	s := &Snapshot{Slot: int(d.Int64())}
	if n := d.Count(8); n > 0 {
		s.Devices = make([]DeviceState, n)
		for i := range s.Devices {
			ds := &s.Devices[i]
			ds.ID = d.String()
			ds.Channel = d.String()
			ds.Display = decDisplay(d)
			ds.Transform = d.Bool()
			ds.Slot = int(d.Int64())
			ds.Estimator = decEstimator(d)
		}
	}
	if n := d.Count(8); n > 0 {
		s.Pending = make([]scheduler.Request, n)
		for i := range s.Pending {
			s.Pending[i] = decRequest(d)
		}
	}
	if n := d.Count(8); n > 0 {
		s.Streams = make([]scheduler.StreamState, n)
		for i := range s.Streams {
			st := &s.Streams[i]
			st.Key = d.String()
			st.ConfigSig = d.Bytes()
			if m := d.Count(8); m > 0 {
				st.WarmSelected = make([]string, m)
				for j := range st.WarmSelected {
					st.WarmSelected[j] = d.String()
				}
			}
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, d.Remaining())
	}
	return s, nil
}

// WriteFile encodes the snapshot and writes it atomically.
func (s *Snapshot) WriteFile(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data)
}

// LoadSnapshot reads and decodes a daemon-state file. Filesystem
// errors (notably fs.ErrNotExist) pass through unwrapped so callers
// can distinguish "no snapshot yet" from "snapshot unusable".
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(data)
}

// encEstimator writes the posterior's persistent fields; the derived
// Gamma/Uncertainty values are recomputed on restore.
func encEstimator(e *Enc, s bayes.Snapshot) {
	e.Float64(s.Mean)
	e.Float64(s.Sigma)
	e.Float64(s.ObsSigma)
	e.Float64(s.Lo)
	e.Float64(s.Hi)
	e.Int64(int64(s.Observations))
}

func decEstimator(d *Dec) bayes.Snapshot {
	return bayes.Snapshot{
		Mean:         d.Float64(),
		Sigma:        d.Float64(),
		ObsSigma:     d.Float64(),
		Lo:           d.Float64(),
		Hi:           d.Float64(),
		Observations: int(d.Int64()),
	}
}

func encDisplay(e *Enc, sp display.Spec) {
	e.Byte(byte(sp.Type))
	e.Int64(int64(sp.Resolution.Width))
	e.Int64(int64(sp.Resolution.Height))
	e.Float64(sp.DiagonalInch)
	e.Float64(sp.Brightness)
}

func decDisplay(d *Dec) display.Spec {
	var sp display.Spec
	switch ty := d.Byte(); ty {
	case byte(display.LCD):
		sp.Type = display.LCD
	case byte(display.OLED):
		sp.Type = display.OLED
	default:
		d.fail(fmt.Errorf("%w: display type 0x%02x", ErrCorrupt, ty))
	}
	sp.Resolution.Width = int(d.Int64())
	sp.Resolution.Height = int(d.Int64())
	sp.DiagonalInch = d.Float64()
	sp.Brightness = d.Float64()
	return sp
}

// Anxiety model tags. The persist schema reuses the audit taxonomy
// (audit.AnxietyRecord): nil and the closed-form kinds round-trip;
// "custom" models cannot be rebuilt from data and refuse to encode.
const (
	anxietyNil       = 0
	anxietyCanonical = 1
	anxietyRescaled  = 2
)

func encAnxiety(e *Enc, m anxiety.Model) error {
	if m == nil {
		e.Byte(anxietyNil)
		return nil
	}
	rec := audit.NewAnxietyRecord(m)
	switch rec.Kind {
	case "canonical":
		e.Byte(anxietyCanonical)
	case "rescaled":
		e.Byte(anxietyRescaled)
	default:
		return fmt.Errorf("persist: anxiety model %T is not snapshotable", m)
	}
	e.Float64(rec.AnxietyAtWarning)
	e.Float64(rec.ConvexPower)
	e.Float64(rec.ConcavePower)
	e.Float64(rec.Warning)
	return nil
}

func decAnxiety(d *Dec) anxiety.Model {
	var rec audit.AnxietyRecord
	switch tag := d.Byte(); tag {
	case anxietyNil:
		return nil
	case anxietyCanonical:
		rec.Kind = "canonical"
	case anxietyRescaled:
		rec.Kind = "rescaled"
	default:
		d.fail(fmt.Errorf("%w: anxiety tag 0x%02x", ErrCorrupt, tag))
		return nil
	}
	rec.AnxietyAtWarning = d.Float64()
	rec.ConvexPower = d.Float64()
	rec.ConcavePower = d.Float64()
	rec.Warning = d.Float64()
	if d.err != nil {
		return nil
	}
	m, err := rec.Model()
	if err != nil {
		d.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
		return nil
	}
	return m
}

func encRequest(e *Enc, r *scheduler.Request) error {
	e.String(r.DeviceID)
	encDisplay(e, r.Display)
	e.Float64(r.EnergyFrac)
	e.Float64(r.BatteryCapacityJ)
	e.Float64(r.BasePowerW)
	e.Float64(r.Gamma)
	if err := encAnxiety(e, r.Anxiety); err != nil {
		return fmt.Errorf("%v (pending report %s)", err, r.DeviceID)
	}
	e.Uint64(uint64(len(r.Chunks)))
	for i := range r.Chunks {
		c := &r.Chunks[i]
		e.Int64(int64(c.Index))
		e.Float64(c.DurationSec)
		e.Int64(int64(c.BitrateKbps))
		e.Float64(c.Stats.MeanLuma)
		e.Float64(c.Stats.PeakLuma)
		e.Float64(c.Stats.MeanR)
		e.Float64(c.Stats.MeanG)
		e.Float64(c.Stats.MeanB)
	}
	return nil
}

func decRequest(d *Dec) scheduler.Request {
	r := scheduler.Request{DeviceID: d.String()}
	r.Display = decDisplay(d)
	r.EnergyFrac = d.Float64()
	r.BatteryCapacityJ = d.Float64()
	r.BasePowerW = d.Float64()
	r.Gamma = d.Float64()
	r.Anxiety = decAnxiety(d)
	if n := d.Count(8); n > 0 {
		r.Chunks = make([]video.Chunk, n)
		for i := range r.Chunks {
			c := &r.Chunks[i]
			c.Index = int(d.Int64())
			c.DurationSec = d.Float64()
			c.BitrateKbps = int(d.Int64())
			c.Stats.MeanLuma = d.Float64()
			c.Stats.PeakLuma = d.Float64()
			c.Stats.MeanR = d.Float64()
			c.Stats.MeanG = d.Float64()
			c.Stats.MeanB = d.Float64()
		}
	}
	return r
}

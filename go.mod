module lpvs

go 1.22

package lpvs_test

import (
	"fmt"

	"lpvs"
)

// ExampleRunComparison runs one paired emulation and reads the paper's
// headline metrics. Results are deterministic given the seed.
func ExampleRunComparison() {
	cfg := lpvs.EmulationConfig{
		Seed:          1,
		GroupSize:     40,
		Slots:         10,
		Lambda:        1,
		ServerStreams: lpvs.UnboundedCapacity,
		Genre:         lpvs.GenreGaming,
	}
	cmp, err := lpvs.RunComparison(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("saved energy: %v\n", cmp.EnergySavingRatio() > 0.25)
	fmt.Printf("reduced anxiety: %v\n", cmp.AnxietyReduction() > 0)
	// Output:
	// saved energy: true
	// reduced anxiety: true
}

// ExampleExtractAnxietyCurve extracts the Fig. 2 curve from survey
// answers with the paper's four-step procedure.
func ExampleExtractAnxietyCurve() {
	// Three users: two charge at 20%, one at 60%.
	curve, err := lpvs.ExtractAnxietyCurve([]int{20, 20, 60})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("anxiety at 10%%: %.2f\n", curve.AtLevel(10))
	fmt.Printf("anxiety at 40%%: %.2f\n", curve.AtLevel(40))
	// Output:
	// anxiety at 10%: 1.00
	// anxiety at 40%: 0.33
}

// ExampleNewScheduler schedules one empty slot; real requests carry the
// device display, energy status and available chunks.
func ExampleNewScheduler() {
	server, err := lpvs.NewEdgeServer(100)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	s, err := lpvs.NewScheduler(lpvs.SchedulerConfig{Lambda: 1, Server: server})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	dec, err := s.Schedule(nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(s.Name(), "selected", dec.Selected)
	// Output:
	// lpvs selected 0
}

// ExampleGenerateTrace reproduces the paper's dataset population.
func ExampleGenerateTrace() {
	tr, err := lpvs.GenerateTrace(lpvs.DefaultTraceConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d channels, %d sessions\n", len(tr.Channels), tr.NumSessions())
	// Output:
	// 1566 channels, 4761 sessions
}

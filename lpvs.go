package lpvs

import (
	"io"
	"time"

	"net/http"

	"lpvs/internal/anxiety"
	"lpvs/internal/behavior"
	"lpvs/internal/client"
	"lpvs/internal/device"
	"lpvs/internal/edge"
	"lpvs/internal/emu"
	"lpvs/internal/fleet"
	"lpvs/internal/router"
	"lpvs/internal/scheduler"
	"lpvs/internal/server"
	"lpvs/internal/shard"
	"lpvs/internal/stats"
	"lpvs/internal/survey"
	"lpvs/internal/trace"
	"lpvs/internal/video"
)

// UnboundedCapacity, used as EmulationConfig.ServerStreams, removes the
// edge capacity constraint ("sufficient edge resource" in the paper).
const UnboundedCapacity = -1

// DefaultSlotSeconds is the paper's 5-minute scheduling period.
const DefaultSlotSeconds = scheduler.DefaultSlotSeconds

// Core scheduling API.
type (
	// SchedulerConfig parameterises the LPVS scheduler.
	SchedulerConfig = scheduler.Config
	// Scheduler is the two-phase LPVS scheduler.
	Scheduler = scheduler.Scheduler
	// Request is one device's slot request.
	Request = scheduler.Request
	// Decision is the per-slot outcome.
	Decision = scheduler.Decision
	// Policy is any per-slot selection policy (LPVS or a baseline).
	Policy = scheduler.Policy
	// SchedulerPool is the sharded multi-VC scheduling engine.
	SchedulerPool = scheduler.Pool
	// PoolConfig parameterises the sharded engine's fan-out.
	PoolConfig = scheduler.PoolConfig
	// VirtualCluster is one cluster's slot input for a pool tick.
	VirtualCluster = scheduler.VC
	// PoolResult is the merged outcome of one pool tick.
	PoolResult = scheduler.PoolResult
)

// NewScheduler builds the LPVS scheduler.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) { return scheduler.New(cfg) }

// NewSchedulerPool builds the sharded engine fanning virtual clusters
// across a bounded worker set; decisions are bit-identical to a serial
// per-VC loop at any width.
func NewSchedulerPool(cfg SchedulerConfig, pc PoolConfig) (*SchedulerPool, error) {
	return scheduler.NewPool(cfg, pc)
}

// Emulation API.
type (
	// EmulationConfig parameterises a virtual-cluster emulation.
	EmulationConfig = emu.Config
	// RunResult aggregates one emulation run.
	RunResult = emu.RunResult
	// SlotStat is one emulated slot's aggregate snapshot.
	SlotStat = emu.SlotStat
	// Comparison pairs a treated run with its no-transform baseline.
	Comparison = emu.Comparison
	// Emulator drives one virtual cluster under one policy.
	Emulator = emu.Emulator
)

// NewEmulator builds an emulator; a nil policy means the LPVS scheduler.
func NewEmulator(cfg EmulationConfig, policy Policy) (*Emulator, error) {
	return emu.New(cfg, policy)
}

// RunComparison runs LPVS and the no-transform baseline on the identical
// workload and returns the paired metrics.
func RunComparison(cfg EmulationConfig) (*Comparison, error) {
	return emu.Compare(cfg, nil)
}

// RunPolicyComparison is RunComparison for an explicit policy.
func RunPolicyComparison(cfg EmulationConfig, policy Policy) (*Comparison, error) {
	return emu.Compare(cfg, policy)
}

// Anxiety modelling API.
type (
	// AnxietyModel maps a battery fraction to an anxiety degree.
	AnxietyModel = anxiety.Model
	// AnxietyCurve is the empirical curve extracted from survey answers.
	AnxietyCurve = anxiety.Curve
	// SurveyConfig parameterises the synthetic LBA survey.
	SurveyConfig = survey.Config
	// SurveyDataset is a cleansed respondent population.
	SurveyDataset = survey.Dataset
)

// DefaultSurveyConfig reproduces the published survey population
// (N = 2,032).
func DefaultSurveyConfig() SurveyConfig { return survey.DefaultConfig() }

// GenerateSurvey synthesises a calibrated respondent population.
func GenerateSurvey(cfg SurveyConfig) *SurveyDataset { return survey.Generate(cfg) }

// ReadSurvey loads a respondent CSV (as written by Dataset.WriteCSV),
// applying the paper's data cleansing; real survey data can replace the
// synthetic population this way.
func ReadSurvey(r io.Reader) (*SurveyDataset, error) { return survey.ReadCSV(r) }

// ExtractAnxietyCurve runs the paper's four-step extraction over
// charge-threshold answers (battery levels in [1, 100]).
func ExtractAnxietyCurve(answers []int) (*AnxietyCurve, error) { return anxiety.Extract(answers) }

// CanonicalAnxiety returns the closed-form Fig. 2 calibration.
func CanonicalAnxiety() AnxietyModel { return anxiety.NewCanonical() }

// PersonalizeAnxiety rescales a population anxiety model to one user's
// worry threshold (the battery fraction where their anxiety spikes).
func PersonalizeAnxiety(base AnxietyModel, warning float64) (AnxietyModel, error) {
	return anxiety.NewRescaled(base, warning)
}

// FitAnxietyModel converts any anxiety model (e.g. an extracted survey
// curve) into the closed-form canonical parameterisation.
func FitAnxietyModel(m AnxietyModel) (AnxietyModel, error) { return anxiety.FitCanonical(m) }

// Baseline policies.

// NewRandomPolicy admits a random capacity-feasible subset.
func NewRandomPolicy(cfg SchedulerConfig, seed int64) (Policy, error) {
	return scheduler.NewRandomPolicy(cfg, seed)
}

// NewGreedyBatteryPolicy admits lowest-battery devices first.
func NewGreedyBatteryPolicy(cfg SchedulerConfig) (Policy, error) {
	return scheduler.NewGreedyBatteryPolicy(cfg)
}

// NewJointKnapsackPolicy solves the compacted joint problem in one
// knapsack (this reproduction's extension of the two-phase heuristic).
func NewJointKnapsackPolicy(cfg SchedulerConfig) (Policy, error) {
	return scheduler.NewJointKnapsackPolicy(cfg)
}

// NoTransformPolicy returns the conventional-streaming baseline.
func NoTransformPolicy() Policy { return scheduler.NoTransform{} }

// Workload API.
type (
	// TraceConfig parameterises the Twitch-like trace generator.
	TraceConfig = trace.GenConfig
	// Trace is a live-streaming workload dataset.
	Trace = trace.Trace
	// DeviceConfig parameterises random device fleets.
	DeviceConfig = device.GenConfig
	// Device is one emulated mobile device.
	Device = device.Device
	// EdgeServer models the transform capacity of one edge site.
	EdgeServer = edge.Server
)

// DefaultTraceConfig reproduces the paper's filtered dataset population
// (1,566 channels, 4,761 sessions).
func DefaultTraceConfig() TraceConfig { return trace.DefaultGenConfig() }

// GenerateTrace synthesises a workload trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// ReadTrace loads and validates a JSON trace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.ReadJSON(r) }

// NewEdgeServer sizes an edge server in concurrently transformable 720p
// streams (the paper's default is 100).
func NewEdgeServer(streams int) (*EdgeServer, error) { return edge.NewServer(streams) }

// SurveyGiveUpSampler adapts survey give-up answers into the device
// generator's sampler, wiring the measured abandonment behaviour into
// emulated viewers.
func SurveyGiveUpSampler(ds *SurveyDataset) func(*stats.RNG) float64 {
	return emu.SurveyGiveUpSampler(ds)
}

// Genres for emulated streams.
const (
	GenreGaming  = video.Gaming
	GenreEsports = video.Esports
	GenreIRL     = video.IRL
	GenreMusic   = video.Music
	GenreSports  = video.Sports
)

// Video substrate API.
type (
	// Video is a chunked stream.
	Video = video.Video
	// VideoGenre labels the kind of live content.
	VideoGenre = video.Genre
	// VideoGenConfig parameterises synthetic stream generation.
	VideoGenConfig = video.GenConfig
	// RNG is the deterministic random stream used across the library.
	RNG = stats.RNG
)

// NewRNG returns a deterministic random stream.
func NewRNG(seed int64) *RNG { return stats.NewRNG(seed) }

// DefaultVideoConfig returns a plausible live-stream generation config.
func DefaultVideoConfig(id string, g video.Genre, chunks int) VideoGenConfig {
	return video.DefaultGenConfig(id, g, chunks)
}

// GenerateVideo synthesises a stream with per-genre content statistics.
func GenerateVideo(rng *RNG, cfg VideoGenConfig) (*Video, error) { return video.Generate(rng, cfg) }

// Edge service API.
type (
	// EdgeDaemonConfig parameterises the HTTP edge daemon.
	EdgeDaemonConfig = server.Config
	// EdgeDaemon is the LPVS HTTP service.
	EdgeDaemon = server.Server
	// DeviceClient is the device side of the edge protocol.
	DeviceClient = client.Client
	// ClientOption customises a DeviceClient (retries, breaker, codec).
	ClientOption = client.Option
	// ClientFleet batches the per-slot report step of many co-located
	// device clients into one round-trip.
	ClientFleet = client.Fleet
	// Caller is the shared resilient HTTP transport (retries, breaker,
	// retry budget, v1 error envelopes) that both DeviceClient and the
	// router's shard-forwarding client are built on.
	Caller = client.Caller
	// APIError is a non-2xx v1 response decoded from the uniform
	// {code,message,retryable} envelope.
	APIError = client.APIError
)

// WithJSONReports forces a device client's reports onto the JSON codec
// instead of the binary default (DESIGN.md §16) — for old daemons known
// in advance, or debugging with readable bodies.
func WithJSONReports() ClientOption { return client.WithJSONReports() }

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(h *http.Client) ClientOption { return client.WithHTTPClient(h) }

// WithRetries bounds retry attempts and sets the initial backoff for
// retryable failures (per the envelope's retryable flag).
func WithRetries(n int, initial time.Duration) ClientOption { return client.WithRetries(n, initial) }

// WithCircuitBreaker opens the client's breaker after threshold
// consecutive failures, fast-failing calls for the cooldown.
func WithCircuitBreaker(threshold int, cooldown time.Duration) ClientOption {
	return client.WithCircuitBreaker(threshold, cooldown)
}

// WithRetryBudget caps the client-wide ratio of retries to requests,
// preventing retry storms against a struggling daemon.
func WithRetryBudget(max, ratio float64) ClientOption { return client.WithRetryBudget(max, ratio) }

// NewCaller builds the bare resilient transport for custom v1 API
// consumers (dashboards, ops tooling) without a device attached.
func NewCaller(baseURL string, opts ...ClientOption) (*Caller, error) {
	return client.NewCaller(baseURL, opts...)
}

// NewEdgeDaemon builds the HTTP edge daemon.
func NewEdgeDaemon(cfg EdgeDaemonConfig) (*EdgeDaemon, error) { return server.New(cfg) }

// NewDeviceClient connects a device to an edge daemon. Pass nil for the
// default HTTP client. Reports go out in the compact binary wire format
// by default, downgrading to JSON automatically against daemons that do
// not speak it; see WithJSONReports to force JSON up front.
func NewDeviceClient(baseURL string, dev *Device, httpClient *http.Client, opts ...ClientOption) (*DeviceClient, error) {
	return client.New(baseURL, dev, httpClient, opts...)
}

// NewClientFleet groups device clients of one edge daemon for batched
// reporting (one POST /v1/report per slot for the whole group).
func NewClientFleet(clients ...*DeviceClient) (*ClientFleet, error) {
	return client.NewFleet(clients...)
}

type (
	// ShardNode is one member of a federation: a stable node ID (which
	// feeds the hash ring) and the address peers dial.
	ShardNode = shard.Node
	// ShardSpec is the portable shard-map form (JSON file / wire).
	ShardSpec = shard.Spec
	// ShardMap is a consistent-hash map of VC state keys to nodes; its
	// Epoch fingerprints membership for the /v1/shard/* exchange.
	ShardMap = shard.Map
	// RouterConfig parameterises the federation router.
	RouterConfig = router.Config
	// Router is the federation front door: it owns a ShardMap, fans
	// POST /v1/tick out to shard owners, merges decisions in VC-ID
	// order, and forwards device traffic to each channel's owner.
	Router = router.Router
)

// NewShardMap builds a consistent-hash map over the node set;
// replicas <= 0 uses the default virtual-point count.
func NewShardMap(nodes []ShardNode, replicas int) (*ShardMap, error) {
	return shard.New(nodes, replicas)
}

// ParseShardMapFile loads a ShardSpec JSON file (see `lpvsd -shard-map`
// and `lpvs-shard plan`) and builds the map.
func ParseShardMapFile(path string) (*ShardMap, error) { return shard.ParseFile(path) }

// NewRouter builds the federation router over an installed shard map.
// Serve its Handler; DESIGN.md §17 describes the merge and handoff
// contracts, and `lpvsd -mode=router` is the packaged form.
func NewRouter(cfg RouterConfig) (*Router, error) { return router.New(cfg) }

// NewDeviceFleet generates n random devices, mirroring the paper's
// random assignment of display specs and Gaussian energy states.
func NewDeviceFleet(rng *RNG, n int, cfg DeviceConfig) ([]*Device, error) {
	return device.NewFleet(rng, n, cfg)
}

// DefaultDeviceConfig mirrors the paper's emulation setup.
func DefaultDeviceConfig() DeviceConfig { return device.DefaultGenConfig() }

// Trace-driven fleet API.
type (
	// FleetConfig parameterises a trace-driven multi-cluster run.
	FleetConfig = fleet.Config
	// FleetResult aggregates a trace-driven run.
	FleetResult = fleet.Result
)

// RunFleet emulates every (sufficiently popular) channel of a trace as
// an independent virtual cluster, concurrently, and aggregates the
// paper's metrics.
func RunFleet(cfg FleetConfig) (*FleetResult, error) { return fleet.Run(cfg) }

// Behavioural LBA API (the paper's section III-C future work).
type (
	// ChargeEvent is one observed plug-in event.
	ChargeEvent = behavior.ChargeEvent
	// ChargingLog is a charging-behaviour dataset.
	ChargingLog = behavior.Log
	// ChargingLogConfig parameterises the synthetic log generator.
	ChargingLogConfig = behavior.LogConfig
	// BehaviorEstimateConfig tunes the behavioural threshold estimator.
	BehaviorEstimateConfig = behavior.EstimateConfig
)

// DefaultChargingLogConfig mirrors the survey population with a month of
// charging behaviour per user.
func DefaultChargingLogConfig() ChargingLogConfig { return behavior.DefaultLogConfig() }

// GenerateChargingLog synthesises a charging-behaviour dataset.
func GenerateChargingLog(cfg ChargingLogConfig) (*ChargingLog, error) {
	return behavior.Generate(cfg)
}

// EstimateAnxietyFromBehavior recovers the LBA curve from charging
// behaviour instead of survey answers.
func EstimateAnxietyFromBehavior(log *ChargingLog, cfg BehaviorEstimateConfig) (*AnxietyCurve, []int, error) {
	return behavior.Estimate(log, cfg)
}

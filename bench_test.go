// Repository-level benchmarks: one per table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark regenerates its experiment through the same
// entry points as cmd/lpvs-bench and reports the headline metric so that
//
//	go test -bench=. -benchmem
//
// prints the full reproduction alongside the runtime cost of producing
// it. Shape targets (who wins, by how much) are asserted in the
// internal/experiments test suite; the benchmarks report the measured
// values as custom metrics.
package lpvs_test

import (
	"testing"

	"lpvs/internal/experiments"
)

func evalCfg() experiments.EvalConfig {
	cfg := experiments.DefaultEvalConfig()
	cfg.Slots = 12
	return cfg
}

// BenchmarkFig1ComponentBreakdown regenerates the per-component playback
// power of Fig. 1.
func BenchmarkFig1ComponentBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1()
		if len(r.LCD) == 0 {
			b.Fatal("empty breakdown")
		}
	}
}

// BenchmarkFig2AnxietyCurve regenerates the survey and the Fig. 2 LBA
// curve extraction.
func BenchmarkFig2AnxietyCurve(b *testing.B) {
	var lba float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		lba = r.LBARate
	}
	b.ReportMetric(100*lba, "%lba-incidence")
}

// BenchmarkTable1TransformSavings measures every Table I strategy over a
// mixed content corpus.
func BenchmarkTable1TransformSavings(b *testing.B) {
	var avgHi float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		avgHi = r.AvgHi
	}
	b.ReportMetric(100*avgHi, "%avg-max-saving")
}

// BenchmarkFig5SessionHistogram regenerates the Twitch-like trace and its
// duration histogram.
func BenchmarkFig5SessionHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if r.Sessions != 4761 {
			b.Fatalf("sessions = %d", r.Sessions)
		}
	}
}

// BenchmarkFig7SufficientResource reproduces the sufficient-capacity
// energy saving and anxiety reduction (paper: 35.20% / 6.82% average).
func BenchmarkFig7SufficientResource(b *testing.B) {
	var saving, anx float64
	for i := 0; i < b.N; i++ {
		cfg := evalCfg()
		cfg.Seed = int64(i + 1)
		r, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		saving, anx = r.AvgSaving, r.AvgAnxiety
	}
	b.ReportMetric(100*saving, "%energy-saving")
	b.ReportMetric(100*anx, "%anxiety-reduction")
}

// BenchmarkFig8Limited reproduces the limited-capacity sweep over
// cluster sizes and lambda.
func BenchmarkFig8Limited(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		cfg := evalCfg()
		cfg.Seed = int64(i + 1)
		r, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if c, ok := r.Cell(500, 1); ok {
			worst = c.EnergySaving
		}
	}
	b.ReportMetric(100*worst, "%saving-at-N500")
}

// BenchmarkFig9TimePerViewer reproduces the low-battery TPV gain
// (paper: 42.3 -> 58.7 min, +38.8%).
func BenchmarkFig9TimePerViewer(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		cfg := evalCfg()
		cfg.Seed = int64(i + 1)
		r, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		gain = r.Gain
	}
	b.ReportMetric(100*gain, "%tpv-gain")
}

// BenchmarkFig10SchedulerRuntime reproduces the runtime-scaling
// experiment (paper: linear, >5000 devices per 5-minute slot).
func BenchmarkFig10SchedulerRuntime(b *testing.B) {
	var r2 float64
	for i := 0; i < b.N; i++ {
		cfg := evalCfg()
		cfg.Seed = int64(i + 1)
		r, err := experiments.Fig10(cfg, []int{500, 1000, 2000, 3000, 4000, 5000})
		if err != nil {
			b.Fatal(err)
		}
		r2 = r.Fit.R2
	}
	b.ReportMetric(r2, "linear-fit-R2")
}

// BenchmarkTable2Demographics regenerates the survey-population table.
func BenchmarkTable2Demographics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(int64(i + 1))
		if r.Demographics.N == 0 {
			b.Fatal("empty demographics")
		}
	}
}

// BenchmarkAblationSwap measures the Phase-2 contribution.
func BenchmarkAblationSwap(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSwap(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		delta = r.Rows[0].AnxietyReduction - r.Rows[1].AnxietyReduction
	}
	b.ReportMetric(100*delta, "%anxiety-delta")
}

// BenchmarkAblationBayes measures Bayesian gamma learning against the
// fixed prior.
func BenchmarkAblationBayes(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationBayes(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		delta = r.Rows[0].EnergySaving - r.Rows[1].EnergySaving
	}
	b.ReportMetric(100*delta, "%saving-delta")
}

// BenchmarkAblationGreedy compares the exact Phase-1 ILP against the
// greedy knapsack and the joint-knapsack extension.
func BenchmarkAblationGreedy(b *testing.B) {
	var exact, greedy float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSolver(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		exact = r.Rows[0].EnergySaving
		greedy = r.Rows[1].EnergySaving
	}
	b.ReportMetric(100*(exact-greedy), "%exact-vs-greedy")
}

// BenchmarkAblationSlotLength probes the 5-minute scheduling interval
// choice.
func BenchmarkAblationSlotLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSlotLength(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}
